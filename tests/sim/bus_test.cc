// Tests for the snoopy-bus interconnect mode: differential invariants
// against the directory organization on identical reference streams
// (PRAM timing and miss decomposition may never move; only coherence
// bookkeeping may), bus-occupancy accounting, the bus-specific
// checker rules and fault kinds, the interconnect eligibility gate of
// the fault injector, the 64-processor configuration bound, and a
// golden regression pinning the committed FFT rows of
// results/interconnect.csv.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "sim/bus.h"
#include "sim/check.h"
#include "sim/faultinject.h"
#include "sim/memsys.h"

using namespace splash;
using namespace splash::sim;

namespace {

struct Access
{
    ProcId p;
    Addr a;
    AccessType t;
};

std::vector<Access>
randomStream(int nprocs, int n, std::uint64_t lines, std::uint64_t seed)
{
    std::vector<Access> out;
    out.reserve(n);
    std::uint64_t x = seed;
    for (int i = 0; i < n; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        Access acc;
        acc.p = static_cast<ProcId>((x >> 60) % nprocs);
        acc.a = 0x400000 + ((x >> 30) % lines) * 64 + ((x >> 20) % 8) * 8;
        acc.t = ((x >> 13) & 3) == 0 ? AccessType::Write
                                     : AccessType::Read;
        out.push_back(acc);
    }
    return out;
}

void
warmUp(MemSystem& mem, int nprocs, std::uint64_t seed)
{
    for (const auto& acc : randomStream(nprocs, 30000, 400, seed))
        mem.access(acc.p, acc.a, 8, acc.t);
}

MachineConfig
busMachine(int nprocs, ProtocolKind proto = ProtocolKind::MESI)
{
    MachineConfig mc;
    mc.nprocs = nprocs;
    mc.cache.size = 16 << 10;  // small cache: forces replacements
    mc.protocol = proto;
    mc.interconnect = Interconnect::Bus;
    return mc;
}

/** The rule each bus fault kind must trip (its primary signature).
 *  MOESI and Dragon catch SnoopMissedInval through the owner rule
 *  instead: the surviving copy may legally be Owned, so the seeded
 *  Modified makes a second owner before it makes a dirty-shared
 *  line. */
bool
expectedBusRule(const std::vector<Violation>& v, FaultKind k)
{
    auto has = [&](const char* rule) {
        for (const auto& viol : v)
            if (viol.rule == rule)
                return true;
        return false;
    };
    switch (k) {
      case FaultKind::SnoopMissedInval:
          return has("bus-modified-shared") || has("bus-multiple-owner");
      case FaultKind::DoubleOwner:
          return has("bus-multiple-owner");
      case FaultKind::GhostExclusive:
          return has("bus-exclusive-shared");
      case FaultKind::BusTrafficSkew:
          return has("bus-traffic-conservation");
      default:
          return false;
    }
}

/** One characterization per (protocol, interconnect) pair from ONE
 *  broadcast execution of @p appName -- the bench's replica layout:
 *  [2k] directory, [2k+1] bus of zoo protocol k. */
std::vector<harness::RunStats>
runPairs(const std::string& appName, int procs, double scale)
{
    using namespace splash::harness;
    App* app = findApp(appName);
    EXPECT_NE(app, nullptr) << appName;
    AppConfig cfg;
    cfg.scale = scale;
    std::vector<MemExperiment> exps;
    for (int k = 0; k < kNumProtocols; ++k) {
        for (int ic = 0; ic < kNumInterconnects; ++ic) {
            MemExperiment e;
            e.protocol = static_cast<ProtocolKind>(k);
            e.interconnect = static_cast<Interconnect>(ic);
            exps.push_back(e);
        }
    }
    return runCharacterizations(*app, procs, exps, cfg);
}

} // namespace

TEST(Bus, NamesRoundTrip)
{
    for (int i = 0; i < kNumInterconnects; ++i) {
        auto ic = static_cast<Interconnect>(i);
        Interconnect back;
        ASSERT_TRUE(parseInterconnect(interconnectName(ic), &back));
        EXPECT_EQ(back, ic);
    }
    Interconnect ic;
    EXPECT_FALSE(parseInterconnect("crossbar", &ic));
    EXPECT_FALSE(parseInterconnect("Bus", &ic));
    EXPECT_FALSE(parseInterconnect("", &ic));
}

TEST(Bus, OccupancyModelArithmetic)
{
    BusModel b{64, 8};
    EXPECT_EQ(b.addrCycles(), 1);
    EXPECT_EQ(b.lineCycles(), 8);
    EXPECT_EQ(b.updateCycles(), 1);
    // Narrow wires stretch the data phase; the address phase is fixed.
    BusModel narrow{64, 2};
    EXPECT_EQ(narrow.addrCycles(), 1);
    EXPECT_EQ(narrow.lineCycles(), 32);
    EXPECT_EQ(narrow.updateCycles(), 4);
    // Non-multiple line sizes round the last beat up.
    BusModel odd{48, 32};
    EXPECT_EQ(odd.lineCycles(), 2);
}

// The interconnect may change coherence bookkeeping and the traffic
// metric, but never what the program did: misses (per class),
// upgrades, and update broadcasts come from the identical stream and
// the identical protocol table.  Invalidations meet bus >= directory
// (exact-hint directories target exactly the copies a broadcast
// kills).  The two organizations' traffic counters are disjoint.
TEST(Bus, DifferentialAgainstDirectory)
{
    for (const char* name : {"fft", "radix"}) {
        auto r = runPairs(name, 8, 0.25);
        ASSERT_EQ(r.size(), std::size_t(2 * kNumProtocols));
        for (int k = 0; k < kNumProtocols; ++k) {
            const harness::RunStats& d = r[2 * k];
            const harness::RunStats& b = r[2 * k + 1];
            SCOPED_TRACE(std::string(name) + " under " +
                         protocolName(static_cast<ProtocolKind>(k)));
            EXPECT_TRUE(d.valid);
            EXPECT_TRUE(b.valid);
            EXPECT_EQ(d.elapsed, b.elapsed);
            EXPECT_EQ(d.mem.reads, b.mem.reads);
            EXPECT_EQ(d.mem.writes, b.mem.writes);
            for (int m = 0; m < kNumMissTypes; ++m)
                EXPECT_EQ(d.mem.misses[m], b.mem.misses[m])
                    << "miss class " << m;
            EXPECT_EQ(d.mem.upgrades, b.mem.upgrades);
            EXPECT_EQ(d.mem.updates, b.mem.updates);
            EXPECT_GE(b.mem.invalidations, d.mem.invalidations);
            // True sharing is inherent communication -- organization-
            // independent by definition.
            EXPECT_EQ(d.mem.trueSharedData, b.mem.trueSharedData);
            // Disjoint traffic metrics: packets vs occupancy.
            EXPECT_EQ(b.mem.remoteData(), 0u);
            EXPECT_EQ(b.mem.remoteOverhead, 0u);
            EXPECT_EQ(b.mem.localData, 0u);
            EXPECT_GT(b.mem.busTransactions, 0u);
            EXPECT_GT(b.mem.busCycles(), 0u);
            EXPECT_EQ(d.mem.busTransactions, 0u);
            EXPECT_EQ(d.mem.busCycles(), 0u);
            // Every transaction opens with one address phase.
            EXPECT_EQ(b.mem.busAddrCycles, b.mem.busTransactions);
        }
    }
}

// A legitimately reached bus-mode state must be silent under the full
// checker sweep for every registered protocol (the bus-specific rules
// replace the directory cross-validation).
TEST(Bus, CheckerSilentOnCleanStates)
{
    for (int pi = 0; pi < kNumProtocols; ++pi) {
        auto proto = static_cast<ProtocolKind>(pi);
        for (std::uint64_t seed : {1u, 77u, 4096u}) {
            MemSystem mem(busMachine(8, proto));
            warmUp(mem, 8, seed);
            std::vector<Violation> v;
            EXPECT_EQ(CoherenceChecker(mem).checkAll(&v), 0u)
                << protocolName(proto) << " seed=" << seed << "\n"
                << formatViolations(v);
        }
    }
}

// Detection matrix for the bus fault kinds: under every protocol and
// several seeds, each seeded snoop-path corruption must trip the
// checker with the rule that corresponds to it.  The only legal
// ineligibility is GhostExclusive under a protocol without a
// clean-exclusive state (MSI).
TEST(Bus, DetectsEverySeededBusFault)
{
    for (int pi = 0; pi < kNumProtocols; ++pi) {
        auto proto = static_cast<ProtocolKind>(pi);
        for (int ki = 0; ki < kNumFaultKinds; ++ki) {
            auto kind = static_cast<FaultKind>(ki);
            if (!faultKindIsBus(kind))
                continue;
            for (std::uint64_t seed : {0u, 1u, 13u, 1234u}) {
                MemSystem mem(busMachine(8, proto));
                warmUp(mem, 8, 42);
                ASSERT_EQ(CoherenceChecker(mem).checkAll(), 0u)
                    << protocolName(proto);

                std::string what =
                    FaultInjector(mem).inject(kind, seed);
                if (kind == FaultKind::GhostExclusive &&
                    !protocol(proto).hasExclusive) {
                    EXPECT_TRUE(what.empty())
                        << protocolName(proto)
                        << ": no clean-exclusive state to fake";
                    continue;
                }
                ASSERT_FALSE(what.empty())
                    << protocolName(proto) << " " << faultKindName(kind)
                    << " seed " << seed
                    << ": no eligible target in a warmed-up state";

                std::vector<Violation> v;
                std::size_t n = CoherenceChecker(mem).checkAll(&v);
                EXPECT_GT(n, 0u)
                    << protocolName(proto) << " " << faultKindName(kind)
                    << " seed " << seed << ": checker missed " << what;
                EXPECT_TRUE(expectedBusRule(v, kind))
                    << protocolName(proto) << " " << faultKindName(kind)
                    << " seed " << seed
                    << ": expected rule absent from:\n"
                    << formatViolations(v);
            }
        }
    }
}

// Each fault kind corrupts one organization's state: directory kinds
// must report no eligible target on a bus machine (there is no
// directory to corrupt) and bus kinds none on a directory machine.
TEST(Bus, FaultKindsGateOnInterconnect)
{
    MemSystem busMem(busMachine(8));
    warmUp(busMem, 8, 42);
    MachineConfig dmc = busMachine(8);
    dmc.interconnect = Interconnect::Directory;
    MemSystem dirMem(dmc);
    warmUp(dirMem, 8, 42);

    for (int ki = 0; ki < kNumFaultKinds; ++ki) {
        auto kind = static_cast<FaultKind>(ki);
        MemSystem& wrong = faultKindIsBus(kind) ? dirMem : busMem;
        EXPECT_EQ(FaultInjector(wrong).inject(kind, 0), "")
            << faultKindName(kind)
            << " must be ineligible on the other interconnect";
    }
    // ...and the gate must not have perturbed either machine.
    EXPECT_EQ(CoherenceChecker(busMem).checkAll(), 0u);
    EXPECT_EQ(CoherenceChecker(dirMem).checkAll(), 0u);
}

// The wired-in sampled checker works on the bus path too: a live
// violation must abort the run at the next slow-path transaction.
TEST(BusDeathTest, SampledCheckerAbortsOnBusCorruption)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            MemSystem mem(busMachine(8));
            mem.setCheckPeriod(1);
            warmUp(mem, 8, 42);
            // Occupancy skew can never be repaired by later traffic.
            FaultInjector(mem).inject(FaultKind::BusTrafficSkew, 0);
            warmUp(mem, 8, 43);
        },
        "coherence invariant violated");
}

// The full-map directory tracks sharers in a kMaxProcs-bit mask;
// shifting by >= 64 would be undefined behavior, so the configuration
// layer must reject oversized machines with a clear diagnostic
// instead of wrapping.
TEST(BusDeathTest, SixtyFiveProcessorMachineIsRejected)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    MachineConfig mc;
    mc.nprocs = kMaxProcs + 1;
    EXPECT_EXIT({ MemSystem mem(mc); }, ::testing::ExitedWithCode(1),
                "full-map directory");
    mc.nprocs = 0;
    EXPECT_EXIT({ MemSystem mem(mc); }, ::testing::ExitedWithCode(1),
                "processor count");
    // The boundary itself is legal.
    mc.nprocs = kMaxProcs;
    mc.interconnect = Interconnect::Bus;
    MemSystem mem(mc);
    warmUp(mem, kMaxProcs, 7);
    EXPECT_EQ(CoherenceChecker(mem).checkAll(), 0u);
}

// An invalid bus width (zero, non-power-of-two, wider than a line)
// must be rejected by the same configuration validation.
TEST(BusDeathTest, BadBusWidthIsRejected)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    MachineConfig mc;
    mc.interconnect = Interconnect::Bus;
    mc.busWidthBytes = 0;
    EXPECT_EXIT({ MemSystem mem(mc); }, ::testing::ExitedWithCode(1),
                "bus width");
    mc.busWidthBytes = 24;
    EXPECT_EXIT({ MemSystem mem(mc); }, ::testing::ExitedWithCode(1),
                "bus width");
    mc.busWidthBytes = 128;  // lineSize is 64
    EXPECT_EXIT({ MemSystem mem(mc); }, ::testing::ExitedWithCode(1),
                "bus width");
}

#ifdef SPLASH2_SOURCE_DIR
// Golden regression: the committed FFT rows of results/interconnect.csv
// must be reproducible bit-for-bit at the bench's default operating
// point (the same broadcast-replica layout, 16 procs, scale 0.5).
TEST(Bus, GoldenInterconnectCsvRowsFFT)
{
    std::ifstream in(std::string(SPLASH2_SOURCE_DIR) +
                     "/results/interconnect.csv");
    ASSERT_TRUE(in.is_open()) << "results/interconnect.csv missing";
    std::map<std::string, std::vector<double>> committed;
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
        std::istringstream ss(line);
        std::string app, proto, ic, cell;
        std::getline(ss, app, ',');
        if (app != "FFT")
            continue;
        std::getline(ss, proto, ',');
        std::getline(ss, ic, ',');
        std::vector<double> vals;
        while (std::getline(ss, cell, ','))
            vals.push_back(std::stod(cell));
        committed[proto + "," + ic] = vals;
    }
    ASSERT_EQ(committed.size(),
              std::size_t(kNumProtocols * kNumInterconnects));

    auto got = runPairs("fft", 16, 0.5);
    ASSERT_EQ(got.size(),
              std::size_t(kNumProtocols * kNumInterconnects));
    for (int k = 0; k < kNumProtocols; ++k) {
        for (int ic = 0; ic < kNumInterconnects; ++ic) {
            auto proto = static_cast<ProtocolKind>(k);
            auto icv = static_cast<Interconnect>(ic);
            const std::string key = std::string(protocolName(proto)) +
                                    "," + interconnectName(icv);
            auto it = committed.find(key);
            ASSERT_NE(it, committed.end()) << key;
            const auto& want = it->second;
            ASSERT_EQ(want.size(), 6u) << key;
            const MemStats& m = got[2 * k + ic].mem;
            double acc = double(m.accesses());
            ASSERT_GT(acc, 0) << key;
            const bool bus = icv == Interconnect::Bus;
            EXPECT_NEAR(1000.0 * double(m.totalMisses()) / acc,
                        want[0], 5e-7) << key;
            EXPECT_NEAR(1000.0 * double(m.upgrades) / acc, want[1],
                        5e-7) << key;
            EXPECT_NEAR(1000.0 * double(m.invalidations) / acc,
                        want[2], 5e-7) << key;
            EXPECT_NEAR(1000.0 * double(m.updates) / acc, want[3],
                        5e-7) << key;
            EXPECT_NEAR(bus ? 0.0 : double(m.totalTraffic()) / acc,
                        want[4], 5e-7) << key;
            EXPECT_NEAR(bus ? double(m.busCycles()) / acc : 0.0,
                        want[5], 5e-7) << key;
        }
    }
}
#endif
