// Tests for the broadcast replay engine: exactness of every replica
// against dedicated serial simulations under fuzzed ring geometries,
// stream-ordered control events (resetStats, streamBarrier), app-level
// differential runs across replica modes, and golden regressions that
// pin the committed Figure 4 / Figure 7 FFT rows.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "sim/memsys.h"
#include "sim/replay.h"

using namespace splash;
using namespace splash::sim;

namespace {

void
expectSameStats(const MemStats& a, const MemStats& b,
                const std::string& what)
{
    EXPECT_EQ(a.reads, b.reads) << what;
    EXPECT_EQ(a.writes, b.writes) << what;
    for (int m = 0; m < kNumMissTypes; ++m)
        EXPECT_EQ(a.misses[m], b.misses[m]) << what << " miss type " << m;
    EXPECT_EQ(a.upgrades, b.upgrades) << what;
    EXPECT_EQ(a.remoteSharedData, b.remoteSharedData) << what;
    EXPECT_EQ(a.remoteColdData, b.remoteColdData) << what;
    EXPECT_EQ(a.remoteCapacityData, b.remoteCapacityData) << what;
    EXPECT_EQ(a.remoteWriteback, b.remoteWriteback) << what;
    EXPECT_EQ(a.remoteOverhead, b.remoteOverhead) << what;
    EXPECT_EQ(a.localData, b.localData) << what;
    EXPECT_EQ(a.trueSharedData, b.trueSharedData) << what;
}

/** Replica set exercising every config axis the benches use: line
 *  sizes, cache sizes, associativity, and replacement hints. */
std::vector<ReplicaSpec>
mixedSpecs(int nprocs)
{
    std::vector<ReplicaSpec> specs(4);
    for (auto& s : specs)
        s.machine.nprocs = nprocs;
    specs[0].machine.cache.lineSize = 16;
    specs[1].machine.cache.size = 8 << 10;
    specs[1].machine.cache.assoc = 1;
    specs[2].machine.replacementHints = false;
    // specs[3] is the default machine.
    return specs;
}

struct Access
{
    ProcId p;
    Addr a;
    AccessType t;
};

/** Build a sink record (sinks now take the full AccessRec). */
AccessRec
rec(ProcId p, Addr a, int size, AccessType t)
{
    AccessRec r;
    r.addr = a;
    r.size = size;
    r.proc = static_cast<std::int16_t>(p);
    r.type = t;
    return r;
}

std::vector<Access>
randomStream(int nprocs, int n, std::uint64_t lines, std::uint64_t seed)
{
    std::vector<Access> out;
    out.reserve(n);
    std::uint64_t x = seed;
    for (int i = 0; i < n; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        Access acc;
        acc.p = static_cast<ProcId>((x >> 60) % nprocs);
        acc.a = 0x200000 + ((x >> 30) % lines) * 64 + ((x >> 20) % 8) * 8;
        acc.t = ((x >> 13) & 3) == 0 ? AccessType::Write
                                     : AccessType::Read;
        out.push_back(acc);
    }
    return out;
}

} // namespace

// Fuzz: for many (chunk size, ring size, threading) geometries --
// including chunks tiny enough to force constant publish/recycle
// cycling and rings small enough to stall the producer on back-pressure
// -- every replica's statistics must equal a dedicated serial
// simulation of the same stream.
TEST(BroadcastReplay, FuzzedGeometriesMatchSerial)
{
    const int nprocs = 4;
    const auto stream = randomStream(nprocs, 60000, 900, 31337);

    auto specs = mixedSpecs(nprocs);
    std::vector<MemStats> serial;
    for (const auto& spec : specs) {
        MemSystem mem(spec.machine);
        for (const auto& acc : stream)
            mem.access(acc.p, acc.a, 8, acc.t);
        serial.push_back(mem.total());
    }

    struct Geometry
    {
        bool threaded;
        std::size_t chunkRecords;
        int ringChunks;
    };
    const Geometry geoms[] = {
        {true, 64, 2},     // constant back-pressure stalls
        {true, 257, 3},    // odd chunk size, tiny ring
        {true, 1 << 12, 8},
        {false, 128, 2},   // inline replay, tiny chunks
        {false, 1 << 15, 8},
    };
    for (const auto& g : geoms) {
        BroadcastReplay replay(specs, g.threaded, g.chunkRecords,
                               g.ringChunks);
        for (const auto& acc : stream)
            replay.access(rec(acc.p, acc.a, 8, acc.t));
        replay.flush();
        for (int i = 0; i < replay.replicas(); ++i)
            expectSameStats(
                serial[std::size_t(i)], replay.replica(i).total(),
                "replica " + std::to_string(i) + " threaded=" +
                    std::to_string(g.threaded) + " chunk=" +
                    std::to_string(g.chunkRecords) + " ring=" +
                    std::to_string(g.ringChunks));
    }
}

// resetStats must land at the exact stream position in every replica,
// including positions that fall mid-chunk.
TEST(BroadcastReplay, MidStreamResetMatchesSerial)
{
    const int nprocs = 4;
    const auto stream = randomStream(nprocs, 30000, 700, 4242);
    const std::size_t resetAt[] = {1, stream.size() / 3,
                                   stream.size() / 2 + 7};

    auto specs = mixedSpecs(nprocs);
    std::vector<MemStats> serial;
    for (const auto& spec : specs) {
        MemSystem mem(spec.machine);
        for (std::size_t i = 0; i < stream.size(); ++i) {
            for (std::size_t r : resetAt)
                if (i == r)
                    mem.resetStats();
            mem.access(stream[i].p, stream[i].a, 8, stream[i].t);
        }
        serial.push_back(mem.total());
    }

    for (bool threaded : {true, false}) {
        BroadcastReplay replay(specs, threaded, /*chunkRecords=*/512,
                               /*ringChunks=*/3);
        for (std::size_t i = 0; i < stream.size(); ++i) {
            for (std::size_t r : resetAt)
                if (i == r)
                    replay.resetStats();
            replay.access(rec(stream[i].p, stream[i].a, 8, stream[i].t));
        }
        replay.flush();
        for (int i = 0; i < replay.replicas(); ++i)
            expectSameStats(serial[std::size_t(i)],
                            replay.replica(i).total(),
                            "reset replica " + std::to_string(i) +
                                " threaded=" + std::to_string(threaded));
    }
}

// streamBarrier (the placement-mutation quiesce) may appear anywhere in
// the stream, including back-to-back and on empty streams, without
// perturbing any statistics.
TEST(BroadcastReplay, StreamBarriersAreStatisticallyInvisible)
{
    const int nprocs = 2;
    const auto stream = randomStream(nprocs, 20000, 500, 777);

    auto specs = mixedSpecs(nprocs);
    std::vector<MemStats> serial;
    for (const auto& spec : specs) {
        MemSystem mem(spec.machine);
        for (const auto& acc : stream)
            mem.access(acc.p, acc.a, 8, acc.t);
        serial.push_back(mem.total());
    }

    BroadcastReplay replay(specs, true, /*chunkRecords=*/256,
                           /*ringChunks=*/2);
    replay.streamBarrier();  // before any reference
    replay.streamBarrier();  // back-to-back
    for (std::size_t i = 0; i < stream.size(); ++i) {
        replay.access(rec(stream[i].p, stream[i].a, 8, stream[i].t));
        if (i % 3001 == 0)
            replay.streamBarrier();
    }
    replay.flush();
    for (int i = 0; i < replay.replicas(); ++i)
        expectSameStats(serial[std::size_t(i)],
                        replay.replica(i).total(),
                        "barrier replica " + std::to_string(i));
}

// ----------------------------------------------------------------------
// Abort path: a producer that throws mid-stream must never hang the
// consumer pool.  The destructor runs during unwinding, detects it, and
// aborts -- waking consumers blocked waiting for the next chunk --
// instead of flushing a torn stream.

TEST(BroadcastReplay, ProducerExceptionWakesIdleConsumers)
{
    const int nprocs = 4;
    auto specs = mixedSpecs(nprocs);
    const auto stream = randomStream(nprocs, 100, 50, 99);
    // Feed fewer records than one chunk: nothing is ever published, so
    // every consumer is parked waiting for the first chunk when the
    // exception unwinds the producer scope.  If the destructor tried to
    // flush (or forgot to wake them) this test would hang.
    EXPECT_THROW(
        {
            BroadcastReplay replay(specs, /*threaded=*/true,
                                   /*chunkRecords=*/1 << 12,
                                   /*ringChunks=*/2);
            for (const auto& acc : stream)
                replay.access(rec(acc.p, acc.a, 8, acc.t));
            throw std::runtime_error("producer failed mid-stream");
        },
        std::runtime_error);
}

TEST(BroadcastReplay, ProducerExceptionWakesBusyConsumers)
{
    const int nprocs = 4;
    auto specs = mixedSpecs(nprocs);
    // Tiny chunks and minimal ring: consumers are replaying and the
    // producer takes the back-pressure wait; throw from deep inside the
    // stream with chunks in every pipeline state.
    const auto stream = randomStream(nprocs, 40000, 900, 7);
    EXPECT_THROW(
        {
            BroadcastReplay replay(specs, /*threaded=*/true,
                                   /*chunkRecords=*/64,
                                   /*ringChunks=*/2);
            for (std::size_t i = 0; i < stream.size(); ++i) {
                if (i == stream.size() / 2)
                    throw std::runtime_error("producer failed");
                replay.access(rec(stream[i].p, stream[i].a, 8, stream[i].t));
            }
        },
        std::runtime_error);
}

// Differential companion: explicitly aborting leaves the object in a
// safe, quiescent state (idempotent abort, dead-stream accessors), and
// -- unlike a clean flush -- does NOT guarantee replica statistics, so
// the clean half of the same stream must still match serial replay
// while the aborted half makes no promise but must not crash or hang.
TEST(BroadcastReplay, AbortStreamQuiescesAndCleanRunStillMatches)
{
    const int nprocs = 4;
    auto specs = mixedSpecs(nprocs);
    const auto stream = randomStream(nprocs, 20000, 600, 55);

    std::vector<MemStats> serial;
    for (const auto& spec : specs) {
        MemSystem mem(spec.machine);
        for (const auto& acc : stream)
            mem.access(acc.p, acc.a, 8, acc.t);
        serial.push_back(mem.total());
    }

    {
        BroadcastReplay replay(specs, /*threaded=*/true,
                               /*chunkRecords=*/128, /*ringChunks=*/2);
        for (std::size_t i = 0; i < stream.size() / 2; ++i)
            replay.access(rec(stream[i].p, stream[i].a, 8, stream[i].t));
        replay.abortStream();
        EXPECT_TRUE(replay.aborted());
        // Dead stream: further traffic is dropped, quiesce and flush
        // are no-ops, and a second abort is harmless.
        replay.access(rec(0, 0x200000, 8, AccessType::Write));
        replay.streamBarrier();
        replay.flush();
        replay.abortStream();
        EXPECT_TRUE(replay.aborted());
    }  // destructor after abort: must not flush or hang

    BroadcastReplay clean(specs, /*threaded=*/true,
                          /*chunkRecords=*/128, /*ringChunks=*/2);
    for (const auto& acc : stream)
        clean.access(rec(acc.p, acc.a, 8, acc.t));
    clean.flush();
    for (int i = 0; i < clean.replicas(); ++i)
        expectSameStats(serial[std::size_t(i)], clean.replica(i).total(),
                        "post-abort clean replica " + std::to_string(i));
}

// ----------------------------------------------------------------------
// App-level differential: a real application (with barriers, locks,
// placement calls, and measurement resets) characterized under several
// configurations must produce bit-identical statistics whether each
// configuration re-executes (Off) or all share one broadcast execution
// (Inline and Threaded).

TEST(BroadcastReplay, AppCharacterizationsMatchDedicatedRuns)
{
    using namespace splash::harness;
    App* app = findApp("fft");
    ASSERT_NE(app, nullptr);
    AppConfig cfg;
    cfg.scale = 0.25;
    const int procs = 8;

    std::vector<MemExperiment> exps(3);
    exps[0].cache.lineSize = 16;
    exps[1].cache.size = 8 << 10;
    exps[2].hints = false;

    SimOpts off;
    off.replicas = Replicas::Off;
    auto oracle = runCharacterizations(*app, procs, exps, cfg, off);
    ASSERT_EQ(oracle.size(), exps.size());

    for (Replicas mode : {Replicas::Inline, Replicas::Threaded}) {
        SimOpts simOpts;
        simOpts.replicas = mode;
        auto got = runCharacterizations(*app, procs, exps, cfg, simOpts);
        ASSERT_EQ(got.size(), exps.size());
        for (std::size_t i = 0; i < exps.size(); ++i) {
            expectSameStats(oracle[i].mem, got[i].mem,
                            "experiment " + std::to_string(i) +
                                " mode " + replicasName(mode));
            EXPECT_EQ(oracle[i].elapsed, got[i].elapsed);
            ASSERT_EQ(oracle[i].memPerProc.size(),
                      got[i].memPerProc.size());
            for (std::size_t p = 0; p < oracle[i].memPerProc.size(); ++p)
                expectSameStats(oracle[i].memPerProc[p],
                                got[i].memPerProc[p],
                                "experiment " + std::to_string(i) +
                                    " proc " + std::to_string(p));
        }
    }
}

// Radiosity exercises task stealing, pause/resume, and explicit
// placement (setHome during execution -> streamBarrier under load).
TEST(BroadcastReplay, PlacementHeavyAppMatchesDedicatedRuns)
{
    using namespace splash::harness;
    App* app = findApp("radiosity");
    ASSERT_NE(app, nullptr);
    AppConfig cfg;
    cfg.scale = 0.1;
    const int procs = 4;

    std::vector<MemExperiment> exps(2);
    exps[0].cache.size = 16 << 10;
    exps[1].placed = false;  // interleaved homes replica

    SimOpts off;
    off.replicas = Replicas::Off;
    auto oracle = runCharacterizations(*app, procs, exps, cfg, off);

    SimOpts threaded;
    threaded.replicas = Replicas::Threaded;
    auto got = runCharacterizations(*app, procs, exps, cfg, threaded);
    ASSERT_EQ(got.size(), oracle.size());
    for (std::size_t i = 0; i < oracle.size(); ++i)
        expectSameStats(oracle[i].mem, got[i].mem,
                        "radiosity experiment " + std::to_string(i));
}

// ----------------------------------------------------------------------
// Golden regressions: the broadcast engine at the committed benchmark
// operating points must reproduce the committed Figure 4 / Figure 7
// FFT rows exactly (results/fig4.csv and results/fig7.csv are
// generated by the benches themselves; see results/README note in
// EXPERIMENTS.md).

#ifdef SPLASH2_SOURCE_DIR
namespace {

/** Parse a committed CSV into rows keyed by the first two columns. */
std::map<std::pair<std::string, std::string>, std::vector<double>>
loadCsv(const std::string& path, const std::string& app)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::map<std::pair<std::string, std::string>, std::vector<double>>
        rows;
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
        std::istringstream ss(line);
        std::string a, key, cell;
        std::getline(ss, a, ',');
        if (a != app)
            continue;
        std::getline(ss, key, ',');
        std::vector<double> vals;
        while (std::getline(ss, cell, ','))
            vals.push_back(std::stod(cell));
        rows[{a, key}] = vals;
    }
    return rows;
}

} // namespace

TEST(BroadcastRegression, ReproducesCommittedFig7FftRows)
{
    using namespace splash::harness;
    auto committed = loadCsv(
        std::string(SPLASH2_SOURCE_DIR) + "/results/fig7.csv", "FFT");
    ASSERT_EQ(committed.size(), 6u) << "six line sizes";

    App* app = findApp("fft");
    ASSERT_NE(app, nullptr);
    AppConfig cfg;  // default scale and problem size (as committed)
    const int procs = 32;
    const int lines[] = {8, 16, 32, 64, 128, 256};
    std::vector<MemExperiment> exps;
    for (int line : lines) {
        MemExperiment e;
        e.cache.lineSize = line;
        exps.push_back(e);
    }
    SimOpts simOpts;
    simOpts.replicas = Replicas::Threaded;
    auto got = runCharacterizations(*app, procs, exps, cfg, simOpts);
    ASSERT_EQ(got.size(), exps.size());

    for (std::size_t j = 0; j < got.size(); ++j) {
        auto it = committed.find({"FFT", std::to_string(lines[j])});
        ASSERT_NE(it, committed.end()) << lines[j];
        const auto& want = it->second;  // cold, cap, true, false, mr%
        ASSERT_EQ(want.size(), 5u);
        const RunStats& r = got[j];
        double acc = double(r.mem.accesses());
        auto per1000 = [&](MissType m) {
            return 1000.0 * double(r.mem.misses[int(m)]) / acc;
        };
        EXPECT_NEAR(per1000(MissType::Cold), want[0], 5e-7);
        EXPECT_NEAR(per1000(MissType::Capacity), want[1], 5e-7);
        EXPECT_NEAR(per1000(MissType::TrueSharing), want[2], 5e-7);
        EXPECT_NEAR(per1000(MissType::FalseSharing), want[3], 5e-7);
        EXPECT_NEAR(100.0 * r.mem.missRate(), want[4], 5e-7);
    }
}

TEST(BroadcastRegression, ReproducesCommittedFig4FftRow)
{
    using namespace splash::harness;
    auto committed = loadCsv(
        std::string(SPLASH2_SOURCE_DIR) + "/results/fig4.csv", "FFT");
    ASSERT_FALSE(committed.empty());

    App* app = findApp("fft");
    ASSERT_NE(app, nullptr);
    AppConfig cfg;  // default scale (as committed)
    const int procs = 32;
    sim::CacheConfig cache;  // 1 MB 4-way 64 B, the Figure 4 machine
    RunStats r = runWithMemSystem(*app, procs, cache, cfg);

    auto it = committed.find({"FFT", std::to_string(procs)});
    ASSERT_NE(it, committed.end());
    const auto& want = it->second;
    ASSERT_EQ(want.size(), 8u);
    double den = trafficDenominator(*app, r.exec);
    ASSERT_GT(den, 0);
    EXPECT_NEAR(double(r.mem.remoteSharedData) / den, want[0], 5e-7);
    EXPECT_NEAR(double(r.mem.remoteColdData) / den, want[1], 5e-7);
    EXPECT_NEAR(double(r.mem.remoteCapacityData) / den, want[2], 5e-7);
    EXPECT_NEAR(double(r.mem.remoteWriteback) / den, want[3], 5e-7);
    EXPECT_NEAR(double(r.mem.remoteOverhead) / den, want[4], 5e-7);
    EXPECT_NEAR(double(r.mem.localData) / den, want[5], 5e-7);
    EXPECT_NEAR(double(r.mem.trueSharedData) / den, want[6], 5e-7);
    EXPECT_NEAR(double(r.mem.totalTraffic()) / den, want[7], 5e-7);
}
#endif
