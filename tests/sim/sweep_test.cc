// Tests for the single-pass multi-configuration cache sweep, including
// cross-validation against the full MemSystem simulator.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/memsys.h"
#include "sim/sweep.h"

using namespace splash;
using namespace splash::sim;

namespace {

SweepConfig
sweepCfg(int nprocs)
{
    SweepConfig c;
    c.nprocs = nprocs;
    return c;
}

struct Access
{
    ProcId p;
    Addr a;
    AccessType t;
};

std::vector<Access>
randomStream(int nprocs, int n, std::uint64_t lines, std::uint64_t seed)
{
    std::vector<Access> out;
    out.reserve(n);
    std::uint64_t x = seed;
    for (int i = 0; i < n; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        Access acc;
        acc.p = static_cast<ProcId>((x >> 60) % nprocs);
        acc.a = 0x200000 + ((x >> 30) % lines) * 64 + ((x >> 20) % 8) * 8;
        acc.t = ((x >> 13) & 3) == 0 ? AccessType::Write : AccessType::Read;
        out.push_back(acc);
    }
    return out;
}

} // namespace

TEST(Sweep, MissRateMonotonicInCacheSize)
{
    CacheSweep sw(sweepCfg(4));
    for (const auto& acc : randomStream(4, 50000, 3000, 777))
        sw.access(acc.p, acc.a, 8, acc.t);
    for (int assoc : {1, 2, 4, 0}) {
        double prev = 1.1;
        for (std::uint64_t size = 1024; size <= (1u << 20); size *= 2) {
            double mr = sw.missRate(size, assoc);
            EXPECT_LE(mr, prev + 1e-12)
                << "size " << size << " assoc " << assoc;
            prev = mr;
        }
    }
}

TEST(Sweep, FullyAssociativeEliminatesConflictMisses)
{
    // A strided stream whose lines all collide in one set of a
    // direct-mapped cache: fully associative must hold them all.
    CacheSweep sw(sweepCfg(1));
    const int kStride = 1024;  // 1 KB direct-mapped: all map to set 0
    for (int rep = 0; rep < 16; ++rep)
        for (int i = 0; i < 8; ++i)
            sw.access(0, 0x100000 + Addr(i) * kStride, 8,
                      AccessType::Read);
    // 8 distinct lines, footprint 512 B of lines: fits fully assoc 1 KB.
    EXPECT_EQ(sw.misses(1024, 0), 8u);
    // Direct-mapped 1 KB: all 8 lines fight over one set: all miss.
    EXPECT_EQ(sw.misses(1024, 1), 16u * 8u);
    // 4-way 1 KB: 8 lines over one 4-way set still thrash.
    EXPECT_GT(sw.misses(1024, 4), 8u);
}

TEST(Sweep, SingleProcessorSequentialScanWorkingSet)
{
    // A repeated scan over a 32 KB footprint must fit exactly in
    // fully-associative caches >= 32 KB (zero non-cold misses) and
    // thrash LRU caches smaller than the footprint.
    CacheSweep sw(sweepCfg(1));
    const int kLines = 512;  // 32 KB of 64 B lines
    for (int rep = 0; rep < 4; ++rep)
        for (int i = 0; i < kLines; ++i)
            sw.access(0, 0x100000 + Addr(i) * 64, 8, AccessType::Read);
    std::uint64_t accesses = sw.accesses();
    EXPECT_EQ(accesses, 4u * kLines);
    // >= 32 KB fully associative: only the 512 cold misses.
    EXPECT_EQ(sw.misses(32 << 10, 0), 512u);
    EXPECT_EQ(sw.misses(1 << 20, 0), 512u);
    // 16 KB LRU with a cyclic scan of 2x capacity: every access misses.
    EXPECT_EQ(sw.misses(16 << 10, 0), accesses);
}

TEST(Sweep, CoherenceInvalidationMissesAtEverySize)
{
    // P0 and P1 ping-pong writes to one line: after warmup, every
    // access by the other processor misses regardless of cache size.
    CacheSweep sw(sweepCfg(2));
    for (int i = 0; i < 100; ++i) {
        sw.access(0, 0x1000, 8, AccessType::Write);
        sw.access(1, 0x1000, 8, AccessType::Write);
    }
    EXPECT_EQ(sw.misses(1 << 20, 0), 200u);
    EXPECT_EQ(sw.misses(1 << 20, 4), 200u);
}

TEST(Sweep, WriterRereadingOwnLineHits)
{
    CacheSweep sw(sweepCfg(2));
    sw.access(0, 0x1000, 8, AccessType::Write);
    for (int i = 0; i < 9; ++i)
        sw.access(0, 0x1000, 8, AccessType::Write);
    for (int i = 0; i < 10; ++i)
        sw.access(0, 0x1000, 8, AccessType::Read);
    EXPECT_EQ(sw.misses(1024, 1), 1u);  // only the cold miss
}

TEST(Sweep, UpgradeOfSharedLineIsAHit)
{
    // P0 reads (caches), P1 reads (caches), P0 writes: in MESI that is
    // an upgrade, not a miss, for P0 -- and P1's next read misses.
    CacheSweep sw(sweepCfg(2));
    sw.access(0, 0x1000, 8, AccessType::Read);   // cold
    sw.access(1, 0x1000, 8, AccessType::Read);   // cold
    sw.access(0, 0x1000, 8, AccessType::Write);  // upgrade: hit
    EXPECT_EQ(sw.misses(1 << 20, 4), 2u);
    sw.access(1, 0x1000, 8, AccessType::Read);   // invalidated: miss
    EXPECT_EQ(sw.misses(1 << 20, 4), 3u);
}

// Cross-validation: for any operating point present in both simulators
// (same size/assoc/line, LRU, MESI), total misses must agree exactly on
// the same deterministic stream.
class SweepVsMemSystem
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>>
{};

TEST_P(SweepVsMemSystem, MissCountsAgree)
{
    auto [nprocs, assoc, size] = GetParam();

    SweepConfig sc;
    sc.nprocs = nprocs;
    CacheSweep sw(sc);

    MachineConfig mc;
    mc.nprocs = nprocs;
    mc.cache.size = size;
    mc.cache.assoc = assoc;
    mc.cache.lineSize = 64;
    MemSystem mem(mc);

    for (const auto& acc : randomStream(nprocs, 60000, 1500, size + assoc)) {
        sw.access(acc.p, acc.a, 8, acc.t);
        mem.access(acc.p, acc.a, 8, acc.t);
    }
    EXPECT_EQ(sw.misses(size, assoc), mem.total().totalMisses());
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, SweepVsMemSystem,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(std::uint64_t(1) << 10,
                                         std::uint64_t(1) << 13,
                                         std::uint64_t(1) << 16)));

TEST(Sweep, CompactionPreservesCounts)
{
    // Drive enough accesses to force several Fenwick compactions
    // (capacity 2^21) and verify the fully-associative profile still
    // matches a small independent run appended at the end.
    CacheSweep sw(sweepCfg(1));
    const std::uint64_t kTotal = (1u << 21) + 5000;
    for (std::uint64_t i = 0; i < kTotal; ++i) {
        Addr a = 0x100000 + (i % 64) * 64;  // 64-line loop: always hits
        sw.access(0, a, 8, AccessType::Read);
    }
    // 64 cold misses; everything else hits at >= 4 KB fully assoc.
    EXPECT_EQ(sw.misses(4 << 10, 0), 64u);
    EXPECT_EQ(sw.accesses(), kTotal);
}
