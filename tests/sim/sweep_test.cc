// Tests for the single-pass multi-configuration cache sweep, including
// cross-validation against the full MemSystem simulator, exactness of
// the parallel capture/replay pipeline, and reproduction of the
// committed Figure 3 curves.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "harness/experiment.h"
#include "sim/memsys.h"
#include "sim/sweep.h"

using namespace splash;
using namespace splash::sim;

namespace {

SweepConfig
sweepCfg(int nprocs)
{
    SweepConfig c;
    c.nprocs = nprocs;
    return c;
}

struct Access
{
    ProcId p;
    Addr a;
    AccessType t;
};

/** Build a sink record (generic sinks take the full AccessRec). */
AccessRec
rec(ProcId p, Addr a, int size, AccessType t)
{
    AccessRec r;
    r.addr = a;
    r.size = size;
    r.proc = static_cast<std::int16_t>(p);
    r.type = t;
    return r;
}

std::vector<Access>
randomStream(int nprocs, int n, std::uint64_t lines, std::uint64_t seed)
{
    std::vector<Access> out;
    out.reserve(n);
    std::uint64_t x = seed;
    for (int i = 0; i < n; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        Access acc;
        acc.p = static_cast<ProcId>((x >> 60) % nprocs);
        acc.a = 0x200000 + ((x >> 30) % lines) * 64 + ((x >> 20) % 8) * 8;
        acc.t = ((x >> 13) & 3) == 0 ? AccessType::Write : AccessType::Read;
        out.push_back(acc);
    }
    return out;
}

} // namespace

TEST(Sweep, MissRateMonotonicInCacheSize)
{
    CacheSweep sw(sweepCfg(4));
    for (const auto& acc : randomStream(4, 50000, 3000, 777))
        sw.access(acc.p, acc.a, 8, acc.t);
    for (int assoc : {1, 2, 4, 0}) {
        double prev = 1.1;
        for (std::uint64_t size = 1024; size <= (1u << 20); size *= 2) {
            double mr = sw.missRate(size, assoc);
            EXPECT_LE(mr, prev + 1e-12)
                << "size " << size << " assoc " << assoc;
            prev = mr;
        }
    }
}

TEST(Sweep, FullyAssociativeEliminatesConflictMisses)
{
    // A strided stream whose lines all collide in one set of a
    // direct-mapped cache: fully associative must hold them all.
    CacheSweep sw(sweepCfg(1));
    const int kStride = 1024;  // 1 KB direct-mapped: all map to set 0
    for (int rep = 0; rep < 16; ++rep)
        for (int i = 0; i < 8; ++i)
            sw.access(0, 0x100000 + Addr(i) * kStride, 8,
                      AccessType::Read);
    // 8 distinct lines, footprint 512 B of lines: fits fully assoc 1 KB.
    EXPECT_EQ(sw.misses(1024, 0), 8u);
    // Direct-mapped 1 KB: all 8 lines fight over one set: all miss.
    EXPECT_EQ(sw.misses(1024, 1), 16u * 8u);
    // 4-way 1 KB: 8 lines over one 4-way set still thrash.
    EXPECT_GT(sw.misses(1024, 4), 8u);
}

TEST(Sweep, SingleProcessorSequentialScanWorkingSet)
{
    // A repeated scan over a 32 KB footprint must fit exactly in
    // fully-associative caches >= 32 KB (zero non-cold misses) and
    // thrash LRU caches smaller than the footprint.
    CacheSweep sw(sweepCfg(1));
    const int kLines = 512;  // 32 KB of 64 B lines
    for (int rep = 0; rep < 4; ++rep)
        for (int i = 0; i < kLines; ++i)
            sw.access(0, 0x100000 + Addr(i) * 64, 8, AccessType::Read);
    std::uint64_t accesses = sw.accesses();
    EXPECT_EQ(accesses, 4u * kLines);
    // >= 32 KB fully associative: only the 512 cold misses.
    EXPECT_EQ(sw.misses(32 << 10, 0), 512u);
    EXPECT_EQ(sw.misses(1 << 20, 0), 512u);
    // 16 KB LRU with a cyclic scan of 2x capacity: every access misses.
    EXPECT_EQ(sw.misses(16 << 10, 0), accesses);
}

TEST(Sweep, CoherenceInvalidationMissesAtEverySize)
{
    // P0 and P1 ping-pong writes to one line: after warmup, every
    // access by the other processor misses regardless of cache size.
    CacheSweep sw(sweepCfg(2));
    for (int i = 0; i < 100; ++i) {
        sw.access(0, 0x1000, 8, AccessType::Write);
        sw.access(1, 0x1000, 8, AccessType::Write);
    }
    EXPECT_EQ(sw.misses(1 << 20, 0), 200u);
    EXPECT_EQ(sw.misses(1 << 20, 4), 200u);
}

TEST(Sweep, WriterRereadingOwnLineHits)
{
    CacheSweep sw(sweepCfg(2));
    sw.access(0, 0x1000, 8, AccessType::Write);
    for (int i = 0; i < 9; ++i)
        sw.access(0, 0x1000, 8, AccessType::Write);
    for (int i = 0; i < 10; ++i)
        sw.access(0, 0x1000, 8, AccessType::Read);
    EXPECT_EQ(sw.misses(1024, 1), 1u);  // only the cold miss
}

TEST(Sweep, UpgradeOfSharedLineIsAHit)
{
    // P0 reads (caches), P1 reads (caches), P0 writes: in MESI that is
    // an upgrade, not a miss, for P0 -- and P1's next read misses.
    CacheSweep sw(sweepCfg(2));
    sw.access(0, 0x1000, 8, AccessType::Read);   // cold
    sw.access(1, 0x1000, 8, AccessType::Read);   // cold
    sw.access(0, 0x1000, 8, AccessType::Write);  // upgrade: hit
    EXPECT_EQ(sw.misses(1 << 20, 4), 2u);
    sw.access(1, 0x1000, 8, AccessType::Read);   // invalidated: miss
    EXPECT_EQ(sw.misses(1 << 20, 4), 3u);
}

// Cross-validation: for any operating point present in both simulators
// (same size/assoc/line, LRU, MESI), total misses must agree exactly on
// the same deterministic stream.
class SweepVsMemSystem
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>>
{};

TEST_P(SweepVsMemSystem, MissCountsAgree)
{
    auto [nprocs, assoc, size] = GetParam();

    SweepConfig sc;
    sc.nprocs = nprocs;
    CacheSweep sw(sc);

    MachineConfig mc;
    mc.nprocs = nprocs;
    mc.cache.size = size;
    mc.cache.assoc = assoc;
    mc.cache.lineSize = 64;
    MemSystem mem(mc);

    for (const auto& acc : randomStream(nprocs, 60000, 1500, size + assoc)) {
        sw.access(acc.p, acc.a, 8, acc.t);
        mem.access(acc.p, acc.a, 8, acc.t);
    }
    EXPECT_EQ(sw.misses(size, assoc), mem.total().totalMisses());
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, SweepVsMemSystem,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(std::uint64_t(1) << 10,
                                         std::uint64_t(1) << 13,
                                         std::uint64_t(1) << 16)));

TEST(Sweep, CompactionPreservesCounts)
{
    // Drive enough accesses to force many Fenwick compactions (the
    // tree's capacity adapts to the live line count, so a small
    // footprint keeps it tiny and compacts often) and verify the
    // fully-associative profile is unaffected.
    CacheSweep sw(sweepCfg(1));
    const std::uint64_t kTotal = (1u << 21) + 5000;
    for (std::uint64_t i = 0; i < kTotal; ++i) {
        Addr a = 0x100000 + (i % 64) * 64;  // 64-line loop: always hits
        sw.access(0, a, 8, AccessType::Read);
    }
    // 64 cold misses; everything else hits at >= 4 KB fully assoc.
    EXPECT_EQ(sw.misses(4 << 10, 0), 64u);
    EXPECT_EQ(sw.accesses(), kTotal);
}

TEST(Sweep, AdaptiveFenwickGrowsWithFootprint)
{
    // A footprint far beyond the minimum tree capacity (2^16 slots)
    // forces the capacity to grow across compactions; distances must
    // stay exact.  Scan 40000 distinct lines twice: all cold the first
    // pass, and on the second pass every line's reuse distance is the
    // full footprint -- hits only in fully-associative caches that hold
    // it (>= 40000 * 64 B), misses in all smaller ones.
    CacheSweep sw(sweepCfg(1));
    const std::uint64_t kLines = 40000;
    for (int rep = 0; rep < 2; ++rep)
        for (std::uint64_t i = 0; i < kLines; ++i)
            sw.access(0, 0x100000 + i * 64, 8, AccessType::Read);
    EXPECT_EQ(sw.misses(1 << 20, 0), 2 * kLines);  // 1 MB < footprint
    EXPECT_EQ(sw.accesses(), 2 * kLines);
}

// ----------------------------------------------------------------------
// Parallel capture/replay exactness.

TEST(ParallelSweep, MatchesSerialForAnyWorkerCount)
{
    SweepConfig sc;
    sc.nprocs = 8;
    CacheSweep serial(sc);
    auto stream = randomStream(8, 80000, 2500, 4242);
    for (const auto& acc : stream)
        serial.access(acc.p, acc.a, 8, acc.t);

    for (int threads : {1, 2, 4}) {
        CacheSweep sw(sc);
        {
            // Tiny chunks force many flush barriers mid-stream.
            ParallelSweep ps(sw, threads, /*chunkRecords=*/256);
            for (const auto& acc : stream)
                ps.access(rec(acc.p, acc.a, 8, acc.t));
        }
        EXPECT_EQ(serial.accesses(), sw.accesses()) << threads;
        for (std::uint64_t size : sc.sizes)
            for (int assoc : {1, 2, 4, 0})
                EXPECT_EQ(serial.misses(size, assoc),
                          sw.misses(size, assoc))
                    << threads << " workers, size " << size << " assoc "
                    << assoc;
    }
}

TEST(ParallelSweep, ResetStatsMidStreamMatchesSerial)
{
    // resetStats() must flush buffered records first, so the counter
    // zeroing lands at the same stream position as the serial sweep's.
    SweepConfig sc;
    sc.nprocs = 4;
    auto stream = randomStream(4, 30000, 1200, 99);

    CacheSweep serial(sc);
    for (std::size_t i = 0; i < stream.size(); ++i) {
        if (i == stream.size() / 2)
            serial.resetStats();
        serial.access(stream[i].p, stream[i].a, 8, stream[i].t);
    }

    CacheSweep sw(sc);
    {
        ParallelSweep ps(sw, 3, /*chunkRecords=*/512);
        for (std::size_t i = 0; i < stream.size(); ++i) {
            if (i == stream.size() / 2)
                ps.resetStats();
            ps.access(rec(stream[i].p, stream[i].a, 8, stream[i].t));
        }
    }
    EXPECT_EQ(serial.accesses(), sw.accesses());
    for (std::uint64_t size : sc.sizes)
        for (int assoc : {1, 2, 4, 0})
            EXPECT_EQ(serial.misses(size, assoc), sw.misses(size, assoc))
                << "size " << size << " assoc " << assoc;
}

TEST(ParallelSweep, LineSpanningAccessCountsOncePerLine)
{
    SweepConfig sc;
    sc.nprocs = 1;
    CacheSweep serial(sc), sw(sc);
    {
        ParallelSweep ps(sw, 2);
        // 16 bytes straddling a 64 B line boundary: two line touches.
        serial.access(0, 0x1038, 16, AccessType::Read);
        ps.access(rec(0, 0x1038, 16, AccessType::Read));
    }
    EXPECT_EQ(serial.accesses(), 2u);
    EXPECT_EQ(sw.accesses(), 2u);
    EXPECT_EQ(serial.misses(1 << 20, 0), sw.misses(1 << 20, 0));
}

// ----------------------------------------------------------------------
// Regression against the committed Figure 3 curves: the parallel sweep
// at the default configuration must reproduce results/fig3.csv.

#ifdef SPLASH2_SOURCE_DIR
TEST(SweepRegression, ParallelSweepReproducesCommittedFig3Fft)
{
    std::string path =
        std::string(SPLASH2_SOURCE_DIR) + "/results/fig3.csv";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    // (size, assoc) -> committed miss rate for FFT.
    std::map<std::pair<std::uint64_t, int>, double> committed;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ss(line);
        std::string app, szs, as, mrs;
        std::getline(ss, app, ',');
        std::getline(ss, szs, ',');
        std::getline(ss, as, ',');
        std::getline(ss, mrs, ',');
        if (app != "FFT")
            continue;
        committed[{std::stoull(szs), std::stoi(as)}] = std::stod(mrs);
    }
    ASSERT_EQ(committed.size(), 44u) << "11 sizes x 4 associativities";

    using namespace splash::harness;
    App* app = findApp("fft");
    ASSERT_NE(app, nullptr);
    AppConfig cfg;  // default scale 1.0, default problem size
    SweepConfig sc; // default: 32 procs, 64 B lines
    CacheSweep sweep(sc);
    SimOpts simOpts;
    simOpts.sweepThreads = 3;  // exercise the worker pool
    runWithSweep(*app, sc.nprocs, sweep, cfg, simOpts);

    for (const auto& [point, mr] : committed)
        EXPECT_NEAR(sweep.missRate(point.first, point.second), mr, 5e-7)
            << point.first << "B " << point.second << "-way";
}
#endif
