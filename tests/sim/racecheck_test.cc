// The happens-before race detector, tested at three levels:
//
//  1. Hand-built streams into a bare RaceChecker: lock-, barrier-, and
//     flag-ordered streams must be clean; genuinely racy streams must
//     be reported with exact address and processor-pair attribution;
//     the FastTrack read-shared promotion, atomic exclusion, and
//     word-vs-line granularity behaviors are pinned.
//  2. Seeded edge-drop injection on real programs (mirroring the
//     --race-inject harness): every dropped acquire edge must surface
//     as a race involving the processor whose edge was elided, across
//     several seeds.
//  3. The verification result itself: the whole suite is race-free at
//     word granularity, the detector's sync census agrees exactly with
//     the runtime's Figure-2 wait counters, attaching the detector
//     changes no characterization statistic, and broadcast-replay race
//     replicas reproduce the dedicated-run outcome bit for bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "harness/app.h"
#include "harness/experiment.h"
#include "sim/racecheck.h"

using namespace splash;
using namespace splash::sim;
using namespace splash::harness;

namespace {

AccessRec
acc(int p, Addr a, int size, AccessType t, std::uint8_t flags = 0,
    Tick lt = 0)
{
    AccessRec r;
    r.addr = a;
    r.ltime = lt;
    r.size = size;
    r.proc = static_cast<std::int16_t>(p);
    r.type = t;
    r.flags = flags;
    return r;
}

SyncRec
syn(int p, std::uint32_t obj, SyncOp op, SyncPrim prim)
{
    SyncRec r;
    r.obj = obj;
    r.proc = static_cast<std::int16_t>(p);
    r.op = op;
    r.prim = prim;
    return r;
}

RaceConfig
wordCfg(int nprocs)
{
    RaceConfig c;
    c.gran = RaceGranularity::Word;
    c.nprocs = nprocs;
    return c;
}

RaceConfig
lineCfg(int nprocs, int line)
{
    RaceConfig c;
    c.gran = RaceGranularity::Line;
    c.nprocs = nprocs;
    c.lineSize = line;
    return c;
}

constexpr Addr kA = 0x100000000ull;  // sim-address-like base

} // namespace

// ---------------------------------------------------------------------
// Hand-built streams
// ---------------------------------------------------------------------

TEST(RaceCheckCore, LockOrderedStreamIsClean)
{
    RaceChecker rc(wordCfg(2));
    rc.sync(syn(0, 0, SyncOp::Acquire, SyncPrim::Lock));
    rc.access(acc(0, kA, 4, AccessType::Write));
    rc.sync(syn(0, 0, SyncOp::Release, SyncPrim::Lock));
    rc.sync(syn(1, 0, SyncOp::Acquire, SyncPrim::Lock));
    rc.access(acc(1, kA, 4, AccessType::Read));
    rc.access(acc(1, kA, 4, AccessType::Write));
    rc.sync(syn(1, 0, SyncOp::Release, SyncPrim::Lock));
    EXPECT_TRUE(rc.outcome().clean());
    EXPECT_EQ(rc.outcome().census.lockAcquires, 2u);
    EXPECT_EQ(rc.outcome().census.lockReleases, 2u);
}

TEST(RaceCheckCore, UnorderedWritesRaceWithExactAttribution)
{
    RaceChecker rc(wordCfg(4));
    rc.access(acc(0, kA + 64, 4, AccessType::Write, 0, /*lt=*/7));
    rc.access(acc(2, kA + 64, 4, AccessType::Write, 0, /*lt=*/9));
    RaceOutcome o = rc.outcome();
    ASSERT_EQ(o.races, 1u);
    ASSERT_EQ(o.reports.size(), 1u);
    const RaceReport& r = o.reports[0];
    EXPECT_EQ(r.granule, kA + 64);
    EXPECT_EQ(r.bytes, 4);
    EXPECT_EQ(r.prev.proc, 0);
    EXPECT_EQ(r.prev.type, AccessType::Write);
    EXPECT_EQ(r.prev.ltime, 7u);
    EXPECT_EQ(r.cur.proc, 2);
    EXPECT_EQ(r.cur.type, AccessType::Write);
    EXPECT_EQ(r.cur.ltime, 9u);
}

TEST(RaceCheckCore, UnorderedWriteThenReadRaces)
{
    RaceChecker rc(wordCfg(2));
    rc.access(acc(0, kA, 4, AccessType::Write));
    rc.access(acc(1, kA, 4, AccessType::Read));
    RaceOutcome o = rc.outcome();
    ASSERT_EQ(o.races, 1u);
    EXPECT_EQ(o.reports[0].prev.type, AccessType::Write);
    EXPECT_EQ(o.reports[0].cur.type, AccessType::Read);
}

TEST(RaceCheckCore, ConcurrentReadsDoNotRace)
{
    RaceChecker rc(wordCfg(3));
    rc.access(acc(0, kA, 4, AccessType::Read));
    rc.access(acc(1, kA, 4, AccessType::Read));
    rc.access(acc(2, kA, 4, AccessType::Read));
    EXPECT_TRUE(rc.outcome().clean());
}

TEST(RaceCheckCore, BarrierRendezvousOrdersAllPairs)
{
    // Each processor writes its own word, all cross a barrier, then
    // each reads (and rewrites) its neighbor's word: the all-to-all
    // rendezvous must order every pair, including two processors that
    // arrived in either order.
    const int n = 3;
    RaceChecker rc(wordCfg(n));
    for (int p = 0; p < n; ++p)
        rc.access(acc(p, kA + 4 * Addr(p), 4, AccessType::Write));
    for (int p = 0; p < n; ++p)
        rc.sync(syn(p, 0, SyncOp::Release, SyncPrim::Barrier));
    for (int p = 0; p < n; ++p)
        rc.sync(syn(p, 0, SyncOp::Acquire, SyncPrim::Barrier));
    for (int p = 0; p < n; ++p) {
        Addr other = kA + 4 * Addr((p + 1) % n);
        rc.access(acc(p, other, 4, AccessType::Read));
    }
    EXPECT_TRUE(rc.outcome().clean());
    EXPECT_EQ(rc.census().barrierArrivals, 3u);
    EXPECT_EQ(rc.census().barrierDepartures, 3u);
}

TEST(RaceCheckCore, MissingBarrierDepartureRaces)
{
    // Same rendezvous, but P1 never acquires (skipped departure):
    // P1's read of P0's word is unordered with P0's write.
    RaceChecker rc(wordCfg(2));
    rc.access(acc(0, kA, 4, AccessType::Write));
    rc.sync(syn(0, 0, SyncOp::Release, SyncPrim::Barrier));
    rc.sync(syn(1, 0, SyncOp::Release, SyncPrim::Barrier));
    rc.sync(syn(0, 0, SyncOp::Acquire, SyncPrim::Barrier));
    // P1's acquire elided.
    rc.access(acc(1, kA, 4, AccessType::Read));
    RaceOutcome o = rc.outcome();
    ASSERT_EQ(o.races, 1u);
    EXPECT_EQ(o.reports[0].prev.proc, 0);
    EXPECT_EQ(o.reports[0].cur.proc, 1);
}

TEST(RaceCheckCore, FlagOrderedStreamIsClean)
{
    RaceChecker rc(wordCfg(2));
    rc.access(acc(0, kA, 4, AccessType::Write));
    rc.sync(syn(0, 5, SyncOp::Release, SyncPrim::Flag));  // set
    rc.sync(syn(1, 5, SyncOp::Acquire, SyncPrim::Flag));  // wait
    rc.access(acc(1, kA, 4, AccessType::Read));
    EXPECT_TRUE(rc.outcome().clean());
    EXPECT_EQ(rc.census().flagSets, 1u);
    EXPECT_EQ(rc.census().flagWaits, 1u);
}

TEST(RaceCheckCore, ReadWithoutFlagWaitRaces)
{
    RaceChecker rc(wordCfg(2));
    rc.access(acc(0, kA, 4, AccessType::Write));
    rc.sync(syn(0, 5, SyncOp::Release, SyncPrim::Flag));
    rc.access(acc(1, kA, 4, AccessType::Read));  // no wait
    EXPECT_EQ(rc.outcome().races, 1u);
}

TEST(RaceCheckCore, ReadSharedPromotionReportsEveryReader)
{
    // Two concurrent readers force the epoch -> vector-clock
    // promotion; an unordered write must then race with *both*.
    RaceChecker rc(wordCfg(3));
    rc.access(acc(1, kA, 4, AccessType::Read));
    rc.access(acc(2, kA, 4, AccessType::Read));
    EXPECT_TRUE(rc.outcome().clean());
    rc.access(acc(0, kA, 4, AccessType::Write));
    RaceOutcome o = rc.outcome();
    EXPECT_EQ(o.races, 2u);  // (0,1) and (0,2) on the same word
    EXPECT_EQ(o.racyGranules, 1u);
    bool saw1 = false, saw2 = false;
    for (const RaceReport& r : o.reports) {
        EXPECT_EQ(r.cur.proc, 0);
        EXPECT_EQ(r.prev.type, AccessType::Read);
        saw1 = saw1 || r.prev.proc == 1;
        saw2 = saw2 || r.prev.proc == 2;
    }
    EXPECT_TRUE(saw1);
    EXPECT_TRUE(saw2);
}

TEST(RaceCheckCore, AtomicAnnotatedAccessesAreExcluded)
{
    RaceChecker rc(wordCfg(2));
    rc.access(acc(0, kA, 4, AccessType::Write, AccessRec::kAtomic));
    rc.access(acc(1, kA, 4, AccessType::Write, AccessRec::kAtomic));
    rc.access(acc(1, kA, 4, AccessType::Read, AccessRec::kAtomic));
    EXPECT_TRUE(rc.outcome().clean());
    EXPECT_EQ(rc.outcome().granulesTracked, 0u);
}

TEST(RaceCheckCore, LineGranularityFlagsFalseSharingWordDoesNot)
{
    // Two processors write *different* words of the same 64-byte
    // line, unordered: no data race, pure false sharing.
    RaceChecker word(wordCfg(2));
    word.access(acc(0, kA, 4, AccessType::Write));
    word.access(acc(1, kA + 40, 4, AccessType::Write));
    EXPECT_TRUE(word.outcome().clean());

    RaceChecker line(lineCfg(2, 64));
    line.access(acc(0, kA, 4, AccessType::Write));
    line.access(acc(1, kA + 40, 4, AccessType::Write));
    RaceOutcome o = line.outcome();
    ASSERT_EQ(o.races, 1u);
    EXPECT_EQ(o.granuleBytes, 64);
    EXPECT_EQ(o.reports[0].granule, kA);  // line-aligned
    EXPECT_EQ(o.reports[0].bytes, 64);
}

TEST(RaceCheckCore, SpanningAccessChecksEveryGranule)
{
    // An 8-byte access covers two words; a conflicting write to the
    // *second* word must still be caught, attributed to that word.
    RaceChecker rc(wordCfg(2));
    rc.access(acc(0, kA, 8, AccessType::Write));
    rc.access(acc(1, kA + 4, 4, AccessType::Write));
    RaceOutcome o = rc.outcome();
    ASSERT_EQ(o.races, 1u);
    EXPECT_EQ(o.reports[0].granule, kA + 4);
}

TEST(RaceCheckCore, RepeatedConflictsDedupToOnePair)
{
    RaceChecker rc(wordCfg(2));
    for (int i = 0; i < 3; ++i) {
        rc.access(acc(0, kA, 4, AccessType::Write));
        rc.access(acc(1, kA, 4, AccessType::Write));
    }
    RaceOutcome o = rc.outcome();
    EXPECT_EQ(o.races, 1u);
    EXPECT_EQ(o.racyGranules, 1u);
    EXPECT_GE(o.dynamicRaces, 2u);
    EXPECT_EQ(o.reports.size(), 1u);
}

TEST(RaceCheckCore, ResetStatsKeepsOrderingState)
{
    // A pre-window write still races with an in-window access: the
    // reset drops tallies, never the clocks or shadow state.
    RaceChecker rc(wordCfg(2));
    rc.access(acc(0, kA, 4, AccessType::Write));
    rc.resetStats();
    EXPECT_TRUE(rc.outcome().clean());
    rc.access(acc(1, kA, 4, AccessType::Read));
    EXPECT_EQ(rc.outcome().races, 1u);
}

TEST(RaceCheckCore, SummaryMentionsConflicts)
{
    RaceChecker rc(wordCfg(2));
    rc.access(acc(0, kA, 4, AccessType::Write));
    rc.access(acc(1, kA, 4, AccessType::Write));
    std::string s = rc.summary();
    EXPECT_NE(s.find("1 conflict pair"), std::string::npos);
    EXPECT_NE(s.find("P0 write"), std::string::npos);
    EXPECT_NE(s.find("P1 write"), std::string::npos);
}

TEST(RaceCheckCore, GranularityNamesRoundTrip)
{
    RaceGranularity g;
    EXPECT_TRUE(parseRaceGranularity("off", &g));
    EXPECT_EQ(g, RaceGranularity::Off);
    EXPECT_TRUE(parseRaceGranularity("word", &g));
    EXPECT_EQ(g, RaceGranularity::Word);
    EXPECT_TRUE(parseRaceGranularity("line", &g));
    EXPECT_EQ(g, RaceGranularity::Line);
    EXPECT_FALSE(parseRaceGranularity("byte", &g));
    EXPECT_FALSE(parseRaceGranularity("", &g));
    RaceFault k;
    for (int i = 0; i < kNumRaceFaults; ++i) {
        RaceFault want = static_cast<RaceFault>(i);
        ASSERT_TRUE(parseRaceFault(raceFaultName(want), &k));
        EXPECT_EQ(k, want);
    }
    EXPECT_FALSE(parseRaceFault("drop-everything", &k));
}

// ---------------------------------------------------------------------
// Edge-drop injection on hand-built streams
// ---------------------------------------------------------------------

TEST(RaceCheckInject, DroppedLockAcquireExposesTheRace)
{
    // Two lock-ordered critical sections; dropping the second
    // acquire (occurrence 1) makes them race.
    auto run = [](RaceChecker& rc) {
        rc.sync(syn(0, 0, SyncOp::Acquire, SyncPrim::Lock));
        rc.access(acc(0, kA, 4, AccessType::Write));
        rc.sync(syn(0, 0, SyncOp::Release, SyncPrim::Lock));
        rc.sync(syn(1, 0, SyncOp::Acquire, SyncPrim::Lock));
        rc.access(acc(1, kA, 4, AccessType::Write));
        rc.sync(syn(1, 0, SyncOp::Release, SyncPrim::Lock));
    };
    RaceChecker base(wordCfg(2));
    run(base);
    EXPECT_TRUE(base.outcome().clean());
    ASSERT_EQ(base.edgeCount(RaceFault::DropLockAcquire), 2u);

    RaceChecker rc(wordCfg(2));
    rc.dropEdge(RaceFault::DropLockAcquire, 1);
    run(rc);
    EXPECT_TRUE(rc.dropFired());
    EXPECT_EQ(rc.droppedProc(), 1);
    RaceOutcome o = rc.outcome();
    ASSERT_EQ(o.races, 1u);
    EXPECT_EQ(o.reports[0].granule, kA);
    EXPECT_EQ(o.reports[0].prev.proc, 0);
    EXPECT_EQ(o.reports[0].cur.proc, 1);
}

TEST(RaceCheckInject, EdgeCountsAreKeyedByKind)
{
    RaceChecker rc(wordCfg(2));
    rc.sync(syn(0, 0, SyncOp::Acquire, SyncPrim::Lock));
    rc.sync(syn(0, 1, SyncOp::Release, SyncPrim::Barrier));
    rc.sync(syn(0, 1, SyncOp::Acquire, SyncPrim::Barrier));
    rc.sync(syn(1, 2, SyncOp::Acquire, SyncPrim::Flag));
    EXPECT_EQ(rc.edgeCount(RaceFault::DropLockAcquire), 1u);
    EXPECT_EQ(rc.edgeCount(RaceFault::DropBarrierEdge), 1u);
    EXPECT_EQ(rc.edgeCount(RaceFault::DropFlagWait), 1u);
}

// ---------------------------------------------------------------------
// Real programs
// ---------------------------------------------------------------------

namespace {

AppConfig
smallCfg()
{
    AppConfig cfg;
    cfg.scale = 0.25;
    return cfg;
}

/** Injection on a real program, mirroring splash2run --race-inject:
 *  baseline must be clean, and for every fault kind selected in the
 *  @p kinds bitmask (bit = RaceFault value) a dropped edge must be
 *  reported as a race involving the dropped processor.  Kinds whose
 *  edges are all individually redundant in this program -- radix
 *  brackets each pass with back-to-back barriers, so either one alone
 *  orders the cross-pass accesses -- are excluded by the caller. */
void
expectInjectedRacesCaught(const char* appName, int procs,
                          unsigned kinds, bool* exercised)
{
    App* app = findApp(appName);
    ASSERT_NE(app, nullptr) << appName;
    AppConfig cfg = smallCfg();
    SimOpts so;

    std::uint64_t edges[kNumRaceFaults] = {};
    {
        RaceChecker base(wordCfg(procs));
        RunStats r = runPram(*app, procs, cfg, so, &base);
        ASSERT_TRUE(r.valid) << appName;
        ASSERT_TRUE(base.outcome().clean())
            << appName << " baseline:\n"
            << base.summary();
        for (int k = 0; k < kNumRaceFaults; ++k)
            edges[k] = base.edgeCount(static_cast<RaceFault>(k));
    }

    // Not every occurrence of an edge is load-bearing: a lock's first
    // acquire after the phase barrier is ordered by that barrier
    // anyway, and a final barrier departure orders no later access.
    // Benign occurrences cluster, so attempts stride across the whole
    // occurrence space from a seeded origin until a dropped edge is
    // exposed as a race attributed to the dropped processor.
    constexpr std::uint64_t kMaxAttempts = 16;
    for (int k = 0; k < kNumRaceFaults; ++k) {
        if (edges[k] == 0 || !(kinds & (1u << k)))
            continue;
        for (std::uint64_t seed : {1ull, 12345ull, 987654321ull}) {
            bool caught = false;
            const std::uint64_t tries = std::min(kMaxAttempts, edges[k]);
            const std::uint64_t stride =
                std::max<std::uint64_t>(1, edges[k] / tries);
            for (std::uint64_t t = 0; t < tries && !caught; ++t) {
                RaceChecker chk(wordCfg(procs));
                chk.dropEdge(static_cast<RaceFault>(k),
                             (seed + t * stride) % edges[k]);
                runPram(*app, procs, cfg, so, &chk);
                EXPECT_TRUE(chk.dropFired())
                    << appName << " " << raceFaultName(RaceFault(k))
                    << " seed " << seed << " attempt " << t;
                if (!chk.dropFired())
                    break;
                RaceOutcome o = chk.outcome();
                if (o.clean())
                    continue;  // benign drop; try the next occurrence
                for (const RaceReport& rep : o.reports)
                    caught = caught ||
                             rep.prev.proc == chk.droppedProc() ||
                             rep.cur.proc == chk.droppedProc();
            }
            EXPECT_TRUE(caught)
                << appName << " " << raceFaultName(RaceFault(k))
                << " seed " << seed << ": none of " << tries
                << " dropped occurrences exposed an attributed race";
            if (caught)
                exercised[k] = true;
        }
    }
}

} // namespace

TEST(RaceCheckApps, InjectedRacesDetectedAcrossSeeds)
{
    // Water-Sp covers locks, Radix covers flags, FFT covers barriers;
    // together every fault kind must be exercised.  Radix's barriers
    // are deliberately not injected: each pass is bracketed by
    // back-to-back barriers (permute, barrier, swap, barrier), so
    // every single departure edge is individually redundant and no
    // drop can expose a race -- which the CLI harness reports as
    // benign, not as a miss.
    bool exercised[kNumRaceFaults] = {false, false, false};
    const unsigned lock = 1u << int(RaceFault::DropLockAcquire);
    const unsigned barrier = 1u << int(RaceFault::DropBarrierEdge);
    const unsigned flag = 1u << int(RaceFault::DropFlagWait);
    expectInjectedRacesCaught("water-sp", 4, lock, exercised);
    expectInjectedRacesCaught("radix", 4, flag, exercised);
    expectInjectedRacesCaught("fft", 4, barrier, exercised);
    for (int k = 0; k < kNumRaceFaults; ++k)
        EXPECT_TRUE(exercised[k])
            << raceFaultName(static_cast<RaceFault>(k))
            << " never had an eligible edge";
}

TEST(RaceCheckApps, SuiteIsRaceFreeAtWordGranularityAndCensusAgrees)
{
    // The verification result (CI re-runs it at 8 processors through
    // splash2run --race word), plus the golden cross-check: the
    // detector's sync census must agree exactly with the runtime's
    // Figure-2 wait counters -- two independent paths from the same
    // primitives.
    const int procs = 4;
    SimOpts so;
    so.race = RaceGranularity::Word;
    for (App* app : suite()) {
        RunStats r = runPram(*app, procs, smallCfg(), so);
        ASSERT_TRUE(r.valid) << app->name();
        ASSERT_TRUE(r.raceChecked) << app->name();
        EXPECT_TRUE(r.race.clean())
            << app->name() << ":\n"
            << raceSummary(r.race);
        std::uint64_t barriers = 0, locks = 0, pauses = 0;
        for (const rt::ProcStats& p : r.perProc) {
            barriers += p.barriers;
            locks += p.locks;
            pauses += p.pauses;
        }
        EXPECT_EQ(r.race.census.barrierArrivals, barriers)
            << app->name();
        EXPECT_EQ(r.race.census.lockAcquires, locks) << app->name();
        EXPECT_EQ(r.race.census.flagWaits, pauses) << app->name();
        EXPECT_EQ(r.race.census.lockReleases, locks) << app->name();
    }
}

TEST(RaceCheckApps, FftSyncCensusPinned)
{
    // Golden counts for one app at a fixed operating point: FFT at 4
    // processors does only barriers (no locks, no flags), and every
    // processor crosses each of the program's barriers.
    const int procs = 4;
    SimOpts so;
    so.race = RaceGranularity::Word;
    App* fft = findApp("fft");
    ASSERT_NE(fft, nullptr);
    RunStats r = runPram(*fft, procs, smallCfg(), so);
    ASSERT_TRUE(r.valid);
    const SyncCensus& c = r.race.census;
    EXPECT_EQ(c.lockAcquires, 0u);
    EXPECT_EQ(c.flagWaits, 0u);
    EXPECT_EQ(c.flagSets, 0u);
    ASSERT_FALSE(r.perProc.empty());
    const std::uint64_t perProc = r.perProc[0].barriers;
    EXPECT_GT(perProc, 0u);
    for (const rt::ProcStats& p : r.perProc)
        EXPECT_EQ(p.barriers, perProc);  // SPMD: same barrier count
    EXPECT_EQ(c.barrierArrivals, perProc * procs);
    EXPECT_EQ(c.barrierDepartures, c.barrierArrivals);
}

TEST(RaceCheckApps, CharacterizationStatsUnchangedByRaceChecking)
{
    // --race is observation only: every execution and memory-system
    // statistic must be byte-identical with the detector attached.
    const int procs = 4;
    App* app = findApp("lu");
    ASSERT_NE(app, nullptr);
    CacheConfig cache;

    SimOpts off;
    RunStats a = runWithMemSystem(*app, procs, cache, smallCfg(), off);
    SimOpts word;
    word.race = RaceGranularity::Word;
    RunStats b = runWithMemSystem(*app, procs, cache, smallCfg(), word);

    ASSERT_TRUE(a.valid);
    ASSERT_TRUE(b.valid);
    EXPECT_TRUE(b.raceChecked);
    EXPECT_FALSE(a.raceChecked);
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(0, std::memcmp(&a.mem, &b.mem, sizeof(a.mem)));
    ASSERT_EQ(a.perProc.size(), b.perProc.size());
    for (std::size_t p = 0; p < a.perProc.size(); ++p)
        EXPECT_EQ(0, std::memcmp(&a.perProc[p], &b.perProc[p],
                                 sizeof(rt::ProcStats)))
            << "P" << p;
    ASSERT_EQ(a.memPerProc.size(), b.memPerProc.size());
    for (std::size_t p = 0; p < a.memPerProc.size(); ++p)
        EXPECT_EQ(0, std::memcmp(&a.memPerProc[p], &b.memPerProc[p],
                                 sizeof(MemStats)))
            << "P" << p;
}

namespace {

void
expectSameOutcome(const RaceOutcome& a, const RaceOutcome& b,
                  const char* what)
{
    EXPECT_EQ(a.gran, b.gran) << what;
    EXPECT_EQ(a.granuleBytes, b.granuleBytes) << what;
    EXPECT_EQ(a.races, b.races) << what;
    EXPECT_EQ(a.racyGranules, b.racyGranules) << what;
    EXPECT_EQ(a.dynamicRaces, b.dynamicRaces) << what;
    EXPECT_EQ(a.granulesTracked, b.granulesTracked) << what;
    EXPECT_EQ(a.census.barrierArrivals, b.census.barrierArrivals)
        << what;
    EXPECT_EQ(a.census.barrierDepartures, b.census.barrierDepartures)
        << what;
    EXPECT_EQ(a.census.lockAcquires, b.census.lockAcquires) << what;
    EXPECT_EQ(a.census.lockReleases, b.census.lockReleases) << what;
    EXPECT_EQ(a.census.flagSets, b.census.flagSets) << what;
    EXPECT_EQ(a.census.flagWaits, b.census.flagWaits) << what;
}

} // namespace

TEST(RaceCheckApps, BroadcastRaceReplicasMatchDedicatedRuns)
{
    // The race replica rides the broadcast replay: its outcome must be
    // identical to the dedicated-execution (Replicas::Off) path, for
    // both granularities, across line sizes that share a replica
    // (word) and ones that cannot (line).
    const int procs = 4;
    App* app = findApp("radix");  // barriers + flags in one program
    ASSERT_NE(app, nullptr);
    std::vector<MemExperiment> exps(2);
    exps[0].cache.lineSize = 64;
    exps[1].cache.lineSize = 32;

    for (RaceGranularity g :
         {RaceGranularity::Word, RaceGranularity::Line}) {
        SimOpts off;
        off.race = g;
        off.replicas = Replicas::Off;
        auto serial =
            runCharacterizations(*app, procs, exps, smallCfg(), off);

        SimOpts inl = off;
        inl.replicas = Replicas::Inline;
        auto inlined =
            runCharacterizations(*app, procs, exps, smallCfg(), inl);

        SimOpts thr = off;
        thr.replicas = Replicas::Threaded;
        auto threaded =
            runCharacterizations(*app, procs, exps, smallCfg(), thr);

        ASSERT_EQ(serial.size(), 2u);
        ASSERT_EQ(inlined.size(), 2u);
        ASSERT_EQ(threaded.size(), 2u);
        for (int i = 0; i < 2; ++i) {
            ASSERT_TRUE(serial[i].raceChecked);
            ASSERT_TRUE(inlined[i].raceChecked);
            ASSERT_TRUE(threaded[i].raceChecked);
            expectSameOutcome(serial[i].race, inlined[i].race,
                              g == RaceGranularity::Word ? "word/inline"
                                                         : "line/inline");
            expectSameOutcome(serial[i].race, threaded[i].race,
                              g == RaceGranularity::Word
                                  ? "word/threads"
                                  : "line/threads");
            EXPECT_EQ(0, std::memcmp(&serial[i].mem, &inlined[i].mem,
                                     sizeof(MemStats)));
            EXPECT_EQ(0, std::memcmp(&serial[i].mem, &threaded[i].mem,
                                     sizeof(MemStats)));
        }
        // Word granularity is line-size independent: both experiments
        // must agree with each other too.
        if (g == RaceGranularity::Word)
            expectSameOutcome(serial[0].race, serial[1].race,
                              "word across line sizes");
    }
}
