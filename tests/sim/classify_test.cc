// Unit tests for the extended-Dubois miss classifier.
#include <gtest/gtest.h>

#include "sim/classify.h"

using namespace splash;
using namespace splash::sim;

TEST(Classify, FirstMissIsCold)
{
    MissClassifier mc(2, 64);
    EXPECT_EQ(mc.classifyMiss(0, 0x1000, 8), MissType::Cold);
    EXPECT_EQ(mc.classifyMiss(1, 0x1000, 8), MissType::Cold);
}

TEST(Classify, ReplacementLossIsCapacity)
{
    MissClassifier mc(2, 64);
    (void)mc.classifyMiss(0, 0x1000, 8);
    mc.noteReplaced(0, 0x1000);
    EXPECT_EQ(mc.classifyMiss(0, 0x1000, 8), MissType::Capacity);
}

TEST(Classify, InvalidationWithAccessedWordWrittenIsTrueSharing)
{
    MissClassifier mc(2, 64);
    (void)mc.classifyMiss(0, 0x1000, 8);   // P0 caches the line
    mc.noteInvalidated(0, 0x1000);         // P1 writes word 0 ...
    mc.recordWrite(0x1000, 8);
    // ... and P0 re-reads the same word.
    EXPECT_EQ(mc.classifyMiss(0, 0x1000, 8), MissType::TrueSharing);
}

TEST(Classify, InvalidationWithOtherWordWrittenIsFalseSharing)
{
    MissClassifier mc(2, 64);
    (void)mc.classifyMiss(0, 0x1000, 8);
    mc.noteInvalidated(0, 0x1000);   // P1 writes word 7
    mc.recordWrite(0x1038, 8);
    // P0 re-reads word 0, untouched by P1: false sharing.
    EXPECT_EQ(mc.classifyMiss(0, 0x1000, 8), MissType::FalseSharing);
}

TEST(Classify, SnapshotTakenBeforeTriggeringWrite)
{
    // P0 held the line with word 3 already written once; P1 rewrites
    // the same word. True sharing must still be detected even though
    // the word had a nonzero version at snapshot time.
    MissClassifier mc(2, 64);
    mc.recordWrite(0x1018, 8);               // earlier write by P0
    (void)mc.classifyMiss(0, 0x1000, 8);
    mc.noteInvalidated(0, 0x1000);
    mc.recordWrite(0x1018, 8);               // P1's write, same word
    EXPECT_EQ(mc.classifyMiss(0, 0x1018, 8), MissType::TrueSharing);
}

TEST(Classify, MultiWordAccessSeesAnyChangedWord)
{
    MissClassifier mc(2, 64);
    (void)mc.classifyMiss(0, 0x1000, 8);
    mc.noteInvalidated(0, 0x1000);
    mc.recordWrite(0x1020, 8);  // word 4
    // P0 reads a 32-byte range covering words 2..5 -> true sharing.
    EXPECT_EQ(mc.classifyMiss(0, 0x1010, 32), MissType::TrueSharing);
}

TEST(Classify, EightByteLinesCannotFalseShare)
{
    // With one word per line every invalidation miss is true sharing.
    MissClassifier mc(2, 8);
    (void)mc.classifyMiss(0, 0x1000, 4);
    mc.noteInvalidated(0, 0x1000);
    mc.recordWrite(0x1004, 4);
    EXPECT_EQ(mc.classifyMiss(0, 0x1000, 4), MissType::TrueSharing);
}

TEST(Classify, IndependentPerProcessorHistory)
{
    MissClassifier mc(3, 64);
    (void)mc.classifyMiss(0, 0x1000, 8);
    (void)mc.classifyMiss(1, 0x1000, 8);
    mc.noteReplaced(0, 0x1000);
    mc.noteInvalidated(1, 0x1000);
    mc.recordWrite(0x1000, 8);
    EXPECT_EQ(mc.classifyMiss(0, 0x1000, 8), MissType::Capacity);
    EXPECT_EQ(mc.classifyMiss(1, 0x1000, 8), MissType::TrueSharing);
    EXPECT_EQ(mc.classifyMiss(2, 0x1000, 8), MissType::Cold);
}

TEST(Classify, LatestLossWins)
{
    // A line lost to invalidation, refetched, then lost to replacement
    // classifies as capacity on the next miss.
    MissClassifier mc(2, 64);
    (void)mc.classifyMiss(0, 0x1000, 8);
    mc.noteInvalidated(0, 0x1000);
    mc.recordWrite(0x1000, 8);
    (void)mc.classifyMiss(0, 0x1000, 8);  // refetch (true sharing)
    mc.noteReplaced(0, 0x1000);
    EXPECT_EQ(mc.classifyMiss(0, 0x1000, 8), MissType::Capacity);
}
