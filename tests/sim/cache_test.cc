// Unit tests for the set-associative LRU cache tag array.
#include <gtest/gtest.h>

#include <vector>

#include "sim/cache.h"

using namespace splash;
using namespace splash::sim;

namespace {

CacheConfig
smallCache(std::uint64_t size, int assoc, int line = 64)
{
    CacheConfig c;
    c.size = size;
    c.assoc = assoc;
    c.lineSize = line;
    return c;
}

} // namespace

TEST(Cache, MissThenHit)
{
    Cache c(smallCache(1024, 2));
    EXPECT_EQ(c.probe(0), LineState::Invalid);
    c.fill(0, LineState::Shared);
    EXPECT_EQ(c.probe(0), LineState::Shared);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // 1 KB, 2-way, 64 B lines -> 8 sets. Lines 0, 512*?, ... map by
    // (addr/64) % 8; choose three lines in the same set.
    Cache c(smallCache(1024, 2));
    Addr a = 0, b = 8 * 64, d = 16 * 64;  // all set 0
    c.fill(a, LineState::Shared);
    c.fill(b, LineState::Shared);
    EXPECT_EQ(c.probe(a), LineState::Shared);  // a becomes MRU
    auto v = c.fill(d, LineState::Shared);     // must evict b
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, b);
    EXPECT_EQ(c.peek(a), LineState::Shared);
    EXPECT_EQ(c.peek(b), LineState::Invalid);
    EXPECT_EQ(c.peek(d), LineState::Shared);
}

TEST(Cache, VictimReportsState)
{
    Cache c(smallCache(128, 1));  // 2 sets, direct mapped
    c.fill(0, LineState::Modified);
    auto v = c.fill(2 * 64, LineState::Shared);  // same set as 0
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 0u);
    EXPECT_EQ(v.state, LineState::Modified);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(smallCache(1024, 4));
    c.fill(64, LineState::Exclusive);
    c.invalidate(64);
    EXPECT_EQ(c.probe(64), LineState::Invalid);
    EXPECT_EQ(c.residentLines(), 0u);
}

TEST(Cache, SetStateTransitions)
{
    Cache c(smallCache(1024, 4));
    c.fill(64, LineState::Exclusive);
    c.setState(64, LineState::Modified);
    EXPECT_EQ(c.peek(64), LineState::Modified);
    c.setState(64, LineState::Shared);
    EXPECT_EQ(c.peek(64), LineState::Shared);
}

TEST(Cache, FullyAssociativeUsesWholeCapacity)
{
    // Fully associative: 32 lines; 32 distinct lines all fit even
    // though a set-associative cache of equal size would conflict.
    Cache c(smallCache(2048, 0));
    for (int i = 0; i < 32; ++i) {
        auto v = c.fill(static_cast<Addr>(i) * 64, LineState::Shared);
        EXPECT_FALSE(v.valid) << "line " << i;
    }
    EXPECT_EQ(c.residentLines(), 32u);
    // One more evicts exactly the LRU (line 0).
    auto v = c.fill(32 * 64, LineState::Shared);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 0u);
}

TEST(Cache, FullyAssociativeLruOrder)
{
    Cache c(smallCache(256, 0));  // 4 lines
    for (Addr i = 0; i < 4; ++i)
        c.fill(i * 64, LineState::Shared);
    EXPECT_EQ(c.probe(0), LineState::Shared);  // 0 MRU; LRU is 1
    auto v = c.fill(4 * 64, LineState::Shared);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.lineAddr, 64u);
}

// Property: a direct-mapped cache of N lines behaves identically to N
// independent one-line caches selected by the set index.
TEST(Cache, DirectMappedEquivalence)
{
    const int kLines = 8;
    Cache c(smallCache(kLines * 64, 1));
    std::vector<Addr> shadow(kLines, ~Addr{0});
    std::uint64_t expected_misses = 0, misses = 0;
    std::uint64_t x = 12345;
    for (int i = 0; i < 20000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        Addr line = ((x >> 33) % 64) * 64;
        int set = static_cast<int>((line / 64) % kLines);
        if (shadow[set] != line) {
            ++expected_misses;
            shadow[set] = line;
        }
        if (c.probe(line) == LineState::Invalid) {
            ++misses;
            c.fill(line, LineState::Shared);
        }
    }
    EXPECT_EQ(misses, expected_misses);
}

// Parameterized sweep: capacity is always fully utilized before any
// eviction happens, for every geometry.
class CacheGeometry : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(CacheGeometry, NoEvictionUntilFull)
{
    auto [size_kb, assoc] = GetParam();
    Cache c(smallCache(std::uint64_t(size_kb) * 1024, assoc));
    int lines = c.config().numLines();
    int sets = c.config().numSets();
    int ways = assoc == 0 ? lines : assoc;
    // Fill each set to capacity with distinct lines.
    for (int s = 0; s < sets; ++s) {
        for (int w = 0; w < ways; ++w) {
            Addr line = (static_cast<Addr>(w) * sets + s) * 64;
            auto v = c.fill(line, LineState::Shared);
            EXPECT_FALSE(v.valid);
        }
    }
    EXPECT_EQ(c.residentLines(), static_cast<std::uint64_t>(lines));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Combine(::testing::Values(1, 4, 16, 64),
                       ::testing::Values(1, 2, 4, 8, 0)));
