// Correctness tests for the Barnes-Hut N-body application.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/barnes/barnes.h"

using namespace splash;
using namespace splash::apps::barnes;

namespace {

Config
smallCfg(int n)
{
    Config cfg;
    cfg.nbodies = n;
    cfg.steps = 1;
    return cfg;
}

double
relativeAccError(const std::vector<double>& got,
                 const std::vector<double>& ref)
{
    double worst = 0;
    for (std::size_t b = 0; b < got.size() / 3; ++b) {
        double e2 = 0, r2 = 0;
        for (int d = 0; d < 3; ++d) {
            double diff = got[3 * b + d] - ref[3 * b + d];
            e2 += diff * diff;
            r2 += ref[3 * b + d] * ref[3 * b + d];
        }
        if (r2 > 0)
            worst = std::max(worst, std::sqrt(e2 / r2));
    }
    return worst;
}

} // namespace

TEST(Barnes, TreeContainsEveryBody)
{
    rt::Env env({rt::Mode::Sim, 4});
    Barnes bh(env, smallCfg(512));
    bh.run();
    EXPECT_EQ(bh.bodiesInTree(), 512);
}

TEST(Barnes, SmallThetaMatchesDirectSummation)
{
    rt::Env env({rt::Mode::Sim, 2});
    Config cfg = smallCfg(256);
    cfg.theta = 0.2;  // aggressive opening: nearly exact
    Barnes bh(env, cfg);
    bh.run();
    // Accelerations were computed on pre-advance positions; rewind by
    // comparing against direct sums computed on the *same* positions
    // is not possible post-advance, so run with dt = 0 instead.
    rt::Env env2({rt::Mode::Sim, 2});
    Config cfg2 = cfg;
    cfg2.dt = 0.0;
    Barnes bh2(env2, cfg2);
    bh2.run();
    EXPECT_LT(relativeAccError(bh2.accelerations(),
                               bh2.directAccelerations()),
              0.02);
}

TEST(Barnes, LargerThetaIsLessAccurateButReasonable)
{
    rt::Env env({rt::Mode::Sim, 2});
    Config cfg = smallCfg(256);
    cfg.theta = 1.0;
    cfg.dt = 0.0;
    Barnes bh(env, cfg);
    bh.run();
    double err = relativeAccError(bh.accelerations(),
                                  bh.directAccelerations());
    EXPECT_LT(err, 0.35);
    EXPECT_GT(err, 1e-6);  // it *is* an approximation
}

class BarnesProcs : public ::testing::TestWithParam<int>
{};

TEST_P(BarnesProcs, TreeCompleteAcrossProcessorCounts)
{
    rt::Env env({rt::Mode::Sim, GetParam()});
    Config cfg = smallCfg(300);  // not a multiple of p: uneven bands
    Barnes bh(env, cfg);
    Result r = bh.run();
    EXPECT_TRUE(r.valid);
    EXPECT_EQ(bh.bodiesInTree(), 300);
}

INSTANTIATE_TEST_SUITE_P(Procs, BarnesProcs,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(Barnes, AccelerationsIndependentOfProcessorCount)
{
    auto accs = [](int p) {
        rt::Env env({rt::Mode::Sim, p});
        Config cfg = smallCfg(256);
        cfg.dt = 0.0;
        Barnes bh(env, cfg);
        bh.run();
        return bh.accelerations();
    };
    auto a1 = accs(1);
    auto a4 = accs(4);
    // The tree shape can differ with insertion order, but with dt = 0
    // and a deterministic build the *forces* must agree closely.
    EXPECT_LT(relativeAccError(a4, a1), 0.15);
}

TEST(Barnes, CostPartitionBalancesWork)
{
    rt::Env env({rt::Mode::Sim, 8});
    Config cfg = smallCfg(1024);
    cfg.steps = 3;  // cost-driven repartitioning kicks in after step 1
    Barnes bh(env, cfg);
    bh.run();
    // Load balance: max proc time within 40% of mean.
    Tick max_t = 0, sum_t = 0;
    for (int p = 0; p < 8; ++p) {
        max_t = std::max(max_t, env.stats(p).elapsed());
        sum_t += env.stats(p).elapsed();
    }
    double mean = double(sum_t) / 8.0;
    EXPECT_LT(double(max_t), 1.4 * mean);
}

TEST(Barnes, UsesLocksForTreeBuild)
{
    rt::Env env({rt::Mode::Sim, 4});
    Barnes bh(env, smallCfg(512));
    bh.run();
    std::uint64_t locks = 0;
    for (int p = 0; p < 4; ++p)
        locks += env.stats(p).locks;
    EXPECT_GT(locks, 512u);  // at least one per insertion
}
