// Correctness tests for the 2-D Fast Multipole Method.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/fmm/fmm.h"

using namespace splash;
using namespace splash::apps::fmm;

namespace {

struct Errors
{
    double pot;
    double grad;
};

Errors
compareToDirect(const Fmm& fmm)
{
    auto got = fmm.particles();
    auto ref = fmm.directReference();
    double pot_num = 0, pot_den = 0, g_num = 0, g_den = 0;
    for (std::size_t i = 0; i < got.size(); ++i) {
        pot_num += (got[i].pot - ref[i].pot) * (got[i].pot - ref[i].pot);
        pot_den += ref[i].pot * ref[i].pot;
        double dx = got[i].gx - ref[i].gx, dy = got[i].gy - ref[i].gy;
        g_num += dx * dx + dy * dy;
        g_den += ref[i].gx * ref[i].gx + ref[i].gy * ref[i].gy;
    }
    return {std::sqrt(pot_num / pot_den), std::sqrt(g_num / g_den)};
}

} // namespace

TEST(Fmm, MatchesDirectSummation)
{
    rt::Env env({rt::Mode::Sim, 4});
    Config cfg;
    cfg.nbodies = 512;
    cfg.terms = 14;
    Fmm fmm(env, cfg);
    fmm.run();
    Errors e = compareToDirect(fmm);
    EXPECT_LT(e.pot, 1e-6);
    EXPECT_LT(e.grad, 1e-6);
}

TEST(Fmm, AccuracyImprovesWithMoreTerms)
{
    auto errAt = [](int terms) {
        rt::Env env({rt::Mode::Sim, 2});
        Config cfg;
        cfg.nbodies = 256;
        cfg.terms = terms;
        Fmm fmm(env, cfg);
        fmm.run();
        return compareToDirect(fmm).pot;
    };
    double e4 = errAt(4);
    double e8 = errAt(8);
    double e16 = errAt(16);
    EXPECT_LT(e8, e4);
    EXPECT_LT(e16, e8 + 1e-15);
    EXPECT_LT(e16, 1e-7);
}

class FmmProcs : public ::testing::TestWithParam<int>
{};

TEST_P(FmmProcs, CorrectAcrossProcessorCounts)
{
    rt::Env env({rt::Mode::Sim, GetParam()});
    Config cfg;
    cfg.nbodies = 400;
    cfg.terms = 10;
    Fmm fmm(env, cfg);
    Result r = fmm.run();
    EXPECT_TRUE(r.valid);
    EXPECT_LT(compareToDirect(fmm).pot, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Procs, FmmProcs,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(Fmm, DeeperTreeStillCorrect)
{
    rt::Env env({rt::Mode::Sim, 4});
    Config cfg;
    cfg.nbodies = 1024;
    cfg.bodiesPerLeaf = 4;  // forces a deeper tree
    cfg.terms = 12;
    Fmm fmm(env, cfg);
    fmm.run();
    EXPECT_GE(fmm.depth(), 4);
    EXPECT_LT(compareToDirect(fmm).pot, 1e-5);
}

TEST(Fmm, MultiStepDynamicsStayFinite)
{
    rt::Env env({rt::Mode::Sim, 4});
    Config cfg;
    cfg.nbodies = 256;
    cfg.steps = 3;
    cfg.terms = 8;
    Fmm fmm(env, cfg);
    Result r = fmm.run();
    EXPECT_TRUE(r.valid);
    for (const auto& pp : fmm.particles()) {
        EXPECT_GE(pp.x, 0.0);
        EXPECT_LE(pp.x, 1.0);
        EXPECT_TRUE(std::isfinite(pp.pot));
    }
}

TEST(Fmm, SinglePassUsesLevelBarriersNotPerBodyTraversals)
{
    // Sanity on the phase structure: barrier count is O(depth), tiny
    // compared to a per-body scheme.
    rt::Env env({rt::Mode::Sim, 4});
    Config cfg;
    cfg.nbodies = 512;
    cfg.terms = 6;
    Fmm fmm(env, cfg);
    fmm.run();
    EXPECT_LT(env.stats(0).barriers, 40u);
}
