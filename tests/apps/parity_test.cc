// Cross-mode parity: every program must compute the same answer under
// the deterministic simulator (Mode::Sim) and under real threads
// (Mode::Native) -- the instrumentation must be behavior-preserving.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/barnes/barnes.h"
#include "apps/cholesky/cholesky.h"
#include "apps/fft/fft.h"
#include "apps/fmm/fmm.h"
#include "apps/lu/lu.h"
#include "apps/ocean/ocean.h"
#include "apps/radix/radix.h"
#include "apps/raytrace/raytrace.h"
#include "apps/volrend/volrend.h"
#include "apps/water/water_nsq.h"

using namespace splash;

namespace {

template <typename F>
std::pair<double, double>
bothModes(F make_and_run)
{
    rt::Env sim({rt::Mode::Sim, 4});
    double a = make_and_run(sim);
    rt::Env native({rt::Mode::Native, 4});
    double b = make_and_run(native);
    return {a, b};
}

} // namespace

TEST(ModeParity, FftChecksumIdentical)
{
    auto [a, b] = bothModes([](rt::Env& env) {
        apps::fft::Config cfg;
        cfg.log2n = 10;
        apps::fft::Fft app(env, cfg);
        return app.run().checksum;
    });
    EXPECT_EQ(a, b);
}

TEST(ModeParity, LuChecksumIdentical)
{
    auto [a, b] = bothModes([](rt::Env& env) {
        apps::lu::Config cfg;
        cfg.n = 64;
        cfg.block = 8;
        apps::lu::Lu app(env, cfg);
        return app.run().checksum;
    });
    EXPECT_EQ(a, b);
}

TEST(ModeParity, RadixSortsInBothModes)
{
    auto [a, b] = bothModes([](rt::Env& env) {
        apps::radix::Config cfg;
        cfg.nkeys = 4096;
        cfg.radix = 256;
        apps::radix::Radix app(env, cfg);
        auto r = app.run();
        EXPECT_TRUE(r.valid);
        return r.checksum;
    });
    EXPECT_EQ(a, b);  // sorted output is schedule-independent
}

TEST(ModeParity, OceanChecksumIdentical)
{
    auto [a, b] = bothModes([](rt::Env& env) {
        apps::ocean::Config cfg;
        cfg.n = 32;
        cfg.steps = 2;
        cfg.tol = 0.0;
        cfg.maxCycles = 3;
        apps::ocean::Ocean app(env, cfg);
        return app.run().checksum;
    });
    // Red-black relaxation order is schedule-independent; only the
    // (unused here) residual reductions could reorder.
    EXPECT_NEAR(a, b, 1e-9 * std::abs(a));
}

TEST(ModeParity, RaytraceImageIdentical)
{
    auto [a, b] = bothModes([](rt::Env& env) {
        apps::raytrace::Config cfg;
        cfg.width = cfg.height = 24;
        apps::raytrace::Raytrace app(env, cfg);
        return app.run().checksum;
    });
    EXPECT_EQ(a, b);  // per-pixel results don't depend on scheduling
}

TEST(ModeParity, VolrendImageIdentical)
{
    auto [a, b] = bothModes([](rt::Env& env) {
        apps::volrend::Config cfg;
        cfg.size = 16;
        cfg.width = 24;
        cfg.frames = 1;
        apps::volrend::Volrend app(env, cfg);
        return app.run().checksum;
    });
    EXPECT_EQ(a, b);
}

TEST(ModeParity, WaterTrajectoriesAgree)
{
    auto [a, b] = bothModes([](rt::Env& env) {
        apps::water::MdConfig cfg;
        cfg.nmol = 64;
        cfg.steps = 2;
        cfg.density = 0.15;
        apps::water::WaterNsq app(env, cfg);
        return app.run().checksum;
    });
    // Force merges reorder floating-point adds across modes.
    EXPECT_NEAR(a, b, 1e-7 * std::abs(a));
}

TEST(ModeParity, CholeskyFactorAgrees)
{
    auto [a, b] = bothModes([](rt::Env& env) {
        apps::cholesky::Config cfg;
        cfg.grid = 8;
        apps::cholesky::Cholesky app(env, cfg);
        return app.run().checksum;
    });
    EXPECT_NEAR(a, b, 1e-9 * std::abs(a));
}

TEST(ModeParity, BarnesTreeCompleteInBothModes)
{
    for (rt::Mode mode : {rt::Mode::Sim, rt::Mode::Native}) {
        rt::Env env({mode, 4});
        apps::barnes::Config cfg;
        cfg.nbodies = 300;
        cfg.steps = 1;
        apps::barnes::Barnes app(env, cfg);
        EXPECT_TRUE(app.run().valid);
        EXPECT_EQ(app.bodiesInTree(), 300);
    }
}

TEST(ModeParity, FmmAccuracyInBothModes)
{
    for (rt::Mode mode : {rt::Mode::Sim, rt::Mode::Native}) {
        rt::Env env({mode, 4});
        apps::fmm::Config cfg;
        cfg.nbodies = 256;
        cfg.terms = 12;
        apps::fmm::Fmm app(env, cfg);
        app.run();
        auto got = app.particles();
        auto ref = app.directReference();
        double worst = 0;
        for (std::size_t i = 0; i < got.size(); ++i)
            worst = std::max(worst,
                             std::abs(got[i].pot - ref[i].pot) /
                                 (std::abs(ref[i].pot) + 1e-12));
        EXPECT_LT(worst, 1e-5);
    }
}
