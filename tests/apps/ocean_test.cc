// Correctness tests for Ocean and its multigrid solver.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/ocean/ocean.h"

using namespace splash;
using namespace splash::apps::ocean;

namespace {
constexpr double kPi = 3.14159265358979323846;
} // namespace

TEST(Multigrid, SolvesPoissonToDiscretizationAccuracy)
{
    // laplacian(u) = f with u = sin(pi x) sin(pi y):
    // f = -2 pi^2 sin(pi x) sin(pi y).
    const int n = 64;
    rt::Env env({rt::Mode::Sim, 4});
    ProcGrid pg = ProcGrid::forProcs(4);
    Grid u(env, n + 1, pg), f(env, n + 1, pg);
    for (int i = 1; i < n; ++i) {
        for (int j = 1; j < n; ++j) {
            double x = double(i) / n, y = double(j) / n;
            f.poke(i, j,
                   -2.0 * kPi * kPi * std::sin(kPi * x) *
                       std::sin(kPi * y));
        }
    }
    Multigrid mg(env, n, pg);
    env.run([&](rt::ProcCtx& c) { mg.solve(c, u, f, 1e-8, 40); });
    double max_err = 0;
    for (int i = 1; i < n; ++i) {
        for (int j = 1; j < n; ++j) {
            double x = double(i) / n, y = double(j) / n;
            double exact = std::sin(kPi * x) * std::sin(kPi * y);
            max_err = std::max(max_err, std::abs(u.peek(i, j) - exact));
        }
    }
    // Second-order discretization: error ~ h^2 ~ 2.4e-4 at n = 64.
    EXPECT_LT(max_err, 1e-3);
}

TEST(Multigrid, ResidualDropsFastPerVCycle)
{
    const int n = 32;
    rt::Env env({rt::Mode::Sim, 2});
    ProcGrid pg = ProcGrid::forProcs(2);
    Grid u(env, n + 1, pg), f(env, n + 1, pg);
    for (int i = 1; i < n; ++i)
        for (int j = 1; j < n; ++j)
            f.poke(i, j, (i * 31 + j * 17) % 7 - 3.0);
    Multigrid mg(env, n, pg);
    double r0 = 0, r1 = 0, r3 = 0;
    env.run([&](rt::ProcCtx& c) {
        double a = mg.residualNorm(c, u, f);
        mg.solve(c, u, f, 0.0, 1);
        double b = mg.residualNorm(c, u, f);
        mg.solve(c, u, f, 0.0, 2);
        double d = mg.residualNorm(c, u, f);
        if (c.id() == 0) {
            r0 = a;
            r1 = b;
            r3 = d;
        }
    });
    // Textbook multigrid: ~an order of magnitude per V-cycle.
    EXPECT_LT(r1, r0 * 0.2);
    EXPECT_LT(r3, r1 * 0.05);
}

class MultigridProcs : public ::testing::TestWithParam<int>
{};

TEST_P(MultigridProcs, SolutionIndependentOfProcessorCount)
{
    const int n = 32;
    int p = GetParam();
    rt::Env env({rt::Mode::Sim, p});
    ProcGrid pg = ProcGrid::forProcs(p);
    Grid u(env, n + 1, pg), f(env, n + 1, pg);
    for (int i = 1; i < n; ++i)
        for (int j = 1; j < n; ++j)
            f.poke(i, j, std::sin(0.3 * i) * std::cos(0.2 * j));
    Multigrid mg(env, n, pg);
    env.run([&](rt::ProcCtx& c) { mg.solve(c, u, f, 0.0, 8); });
    // Compare against a single-processor reference.
    rt::Env env1({rt::Mode::Sim, 1});
    ProcGrid pg1 = ProcGrid::forProcs(1);
    Grid u1(env1, n + 1, pg1), f1(env1, n + 1, pg1);
    for (int i = 1; i < n; ++i)
        for (int j = 1; j < n; ++j)
            f1.poke(i, j, std::sin(0.3 * i) * std::cos(0.2 * j));
    Multigrid mg1(env1, n, pg1);
    env1.run([&](rt::ProcCtx& c) { mg1.solve(c, u1, f1, 0.0, 8); });
    double max_diff = 0;
    for (int i = 1; i < n; ++i)
        for (int j = 1; j < n; ++j)
            max_diff = std::max(
                max_diff, std::abs(u.peek(i, j) - u1.peek(i, j)));
    // Red-black ordering is processor-independent: results identical.
    EXPECT_LT(max_diff, 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Procs, MultigridProcs,
                         ::testing::Values(2, 4, 8, 16));

TEST(Ocean, TimestepsRemainFiniteAndDeterministic)
{
    auto once = [](int p) {
        rt::Env env({rt::Mode::Sim, p});
        Config cfg;
        cfg.n = 32;
        cfg.steps = 2;
        cfg.tol = 0.0;  // fixed cycle count for exact determinism
        cfg.maxCycles = 4;
        Ocean oc(env, cfg);
        Result r = oc.run();
        EXPECT_TRUE(r.valid);
        return r.checksum;
    };
    double c1 = once(1);
    EXPECT_NEAR(once(4), c1, 1e-9 * std::max(1.0, std::abs(c1)));
    EXPECT_NEAR(once(8), c1, 1e-9 * std::max(1.0, std::abs(c1)));
}

TEST(Ocean, UsesManyBarriersPerStep)
{
    rt::Env env({rt::Mode::Sim, 4});
    Config cfg;
    cfg.n = 16;
    cfg.steps = 1;
    cfg.tol = 0.0;
    cfg.maxCycles = 2;
    Ocean oc(env, cfg);
    oc.run();
    // Stencil phases + multigrid relaxation sweeps all barrier.
    EXPECT_GT(env.stats(0).barriers, 10u);
}

TEST(Grid, PartitionCoversGridExactlyOnce)
{
    rt::Env env({rt::Mode::Sim, 8});
    ProcGrid pg = ProcGrid::forProcs(8);
    Grid g(env, 34, pg);
    std::vector<int> hits(34 * 34, 0);
    for (int q = 0; q < 8; ++q)
        for (int i = g.rowFirst(q); i < g.rowLast(q); ++i)
            for (int j = g.colFirst(q); j < g.colLast(q); ++j)
                ++hits[i * 34 + j];
    for (int k = 0; k < 34 * 34; ++k)
        EXPECT_EQ(hits[k], 1) << "cell " << k;
}

TEST(Grid, PokePeekRoundTrip)
{
    rt::Env env({rt::Mode::Sim, 4});
    ProcGrid pg = ProcGrid::forProcs(4);
    Grid g(env, 18, pg);
    for (int i = 0; i < 18; ++i)
        for (int j = 0; j < 18; ++j)
            g.poke(i, j, i * 100.0 + j);
    for (int i = 0; i < 18; ++i)
        for (int j = 0; j < 18; ++j)
            EXPECT_EQ(g.peek(i, j), i * 100.0 + j);
}
