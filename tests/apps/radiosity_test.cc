// Correctness tests for hierarchical radiosity.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/radiosity/radiosity.h"

using namespace splash;
using namespace splash::apps::radiosity;

TEST(Radiosity, FormFactorMatchesPointApproxForDistantPatches)
{
    // Two parallel unit squares 5 apart: F ~ A cos cos / (pi r^2).
    Patch a{}, b{};
    a.v[0] = {0, 0, 0};
    a.v[1] = {1, 0, 0};
    a.v[2] = {1, 1, 0};
    a.v[3] = {0, 1, 0};
    b = a;
    for (int i = 0; i < 4; ++i)
        b.v[i].z = 5.0;
    // Compute centers/normals manually.
    a.center = {0.5, 0.5, 0.0};
    a.normal = {0, 0, 1};
    a.area = 1.0;
    b.center = {0.5, 0.5, 5.0};
    b.normal = {0, 0, -1};
    b.area = 1.0;
    double f = Radiosity::formFactor(a, b);
    double approx = 1.0 / (3.14159265358979 * 25.0);
    EXPECT_NEAR(f, approx, approx * 0.05);
}

TEST(Radiosity, WhiteFurnaceConvergesTowardAnalyticEquilibrium)
{
    // Closed box, every face emissive E = 1, reflectance rho = 0.5:
    // the equilibrium radiosity is E / (1 - rho) = 2 everywhere.
    rt::Env env({rt::Mode::Sim, 4});
    Config cfg;
    cfg.furnace = true;
    cfg.rho = 0.5;
    cfg.iterations = 10;
    Radiosity rad(env, cfg);
    Result r = rad.run();
    EXPECT_TRUE(r.valid);
    for (int root = 0; root < rad.rootCount(); ++root) {
        double b = rad.avgRadiosity(root);
        // The disk form-factor estimate makes row sums inexact; the
        // shape (multi-bounce amplification above E) must hold well.
        EXPECT_GT(b, 1.5) << "root " << root;
        EXPECT_LT(b, 2.5) << "root " << root;
    }
}

TEST(Radiosity, MoreReflectiveFurnaceIsBrighter)
{
    auto furnace = [](double rho) {
        rt::Env env({rt::Mode::Sim, 4});
        Config cfg;
        cfg.furnace = true;
        cfg.rho = rho;
        cfg.iterations = 8;
        Radiosity rad(env, cfg);
        rad.run();
        double b = 0;
        for (int root = 0; root < rad.rootCount(); ++root)
            b += rad.avgRadiosity(root);
        return b / rad.rootCount();
    };
    double dim = furnace(0.2);   // ~E/(1-0.2) = 1.25
    double bright = furnace(0.7);  // ~E/(1-0.7) = 3.33
    EXPECT_GT(bright, dim * 1.7);
}

TEST(Radiosity, RoomSceneRefinesPatches)
{
    rt::Env env({rt::Mode::Sim, 4});
    Config cfg;
    cfg.iterations = 4;
    Radiosity rad(env, cfg);
    Result r = rad.run();
    EXPECT_TRUE(r.valid);
    EXPECT_GT(r.patches, rad.rootCount());  // subdivision happened
    EXPECT_GT(r.interactions, 0);
    EXPECT_GT(r.totalFlux, 0.0);
}

TEST(Radiosity, LightTransportIlluminatesNonEmissiveSurfaces)
{
    rt::Env env({rt::Mode::Sim, 4});
    Config cfg;
    cfg.iterations = 5;
    Radiosity rad(env, cfg);
    rad.run();
    // The floor (root 0) emits nothing yet ends up lit by the panel.
    EXPECT_GT(rad.avgRadiosity(0), 0.05);
}

class RadiosityProcs : public ::testing::TestWithParam<int>
{};

TEST_P(RadiosityProcs, FluxConsistentAcrossProcessorCounts)
{
    auto flux = [](int p) {
        rt::Env env({rt::Mode::Sim, p});
        Config cfg;
        cfg.iterations = 4;
        Radiosity rad(env, cfg);
        return rad.run().totalFlux;
    };
    double f1 = flux(1);
    double fp = flux(GetParam());
    // Refinement order varies with scheduling; the converged transport
    // must agree closely.
    EXPECT_NEAR(fp, f1, 0.05 * f1);
}

INSTANTIATE_TEST_SUITE_P(Procs, RadiosityProcs,
                         ::testing::Values(2, 4, 8));

TEST(Radiosity, UsesTaskQueuesAndLocks)
{
    rt::Env env({rt::Mode::Sim, 8});
    Config cfg;
    cfg.iterations = 3;
    Radiosity rad(env, cfg);
    rad.run();
    std::uint64_t locks = 0;
    for (int p = 0; p < 8; ++p)
        locks += env.stats(p).locks;
    EXPECT_GT(locks, 100u);
}
