// Correctness tests for the Radix sort kernel.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/radix/radix.h"

using namespace splash;
using namespace splash::apps::radix;

class RadixParallel : public ::testing::TestWithParam<int>
{};

TEST_P(RadixParallel, SortsAcrossProcessorCounts)
{
    rt::Env env({rt::Mode::Sim, GetParam()});
    Config cfg;
    cfg.nkeys = 4096;
    cfg.radix = 256;
    cfg.maxKeyLog2 = 20;
    Radix rx(env, cfg);
    Result r = rx.run();
    EXPECT_TRUE(r.valid);
    auto out = rx.output();
    auto expect = rx.input();
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(out, expect);
}

INSTANTIATE_TEST_SUITE_P(Procs, RadixParallel,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(Radix, SingleDigitPass)
{
    // maxKey < radix: a single counting-sort pass must suffice.
    rt::Env env({rt::Mode::Sim, 4});
    Config cfg;
    cfg.nkeys = 1024;
    cfg.radix = 1024;
    cfg.maxKeyLog2 = 10;
    Radix rx(env, cfg);
    EXPECT_TRUE(rx.run().valid);
    // Exactly one permutation pass: each key written exactly once.
    auto t = env.totalStats();
    EXPECT_EQ(env.stats(0).pauses, env.stats(0).pauses);  // smoke
    EXPECT_GT(t.writes, 1024u);
}

TEST(Radix, ManyDigitPasses)
{
    rt::Env env({rt::Mode::Sim, 4});
    Config cfg;
    cfg.nkeys = 2048;
    cfg.radix = 16;  // 5 passes over 20-bit keys
    cfg.maxKeyLog2 = 20;
    Radix rx(env, cfg);
    EXPECT_TRUE(rx.run().valid);
}

TEST(Radix, DuplicateHeavyKeys)
{
    rt::Env env({rt::Mode::Sim, 8});
    Config cfg;
    cfg.nkeys = 4096;
    cfg.radix = 64;
    cfg.maxKeyLog2 = 4;  // only 16 distinct values
    Radix rx(env, cfg);
    EXPECT_TRUE(rx.run().valid);
}

TEST(Radix, PrefixTreeUsesPauses)
{
    // The tree prefix synchronizes with flags: with > 1 processor there
    // must be pause events, and they grow with processor count.
    rt::Env env({rt::Mode::Sim, 8});
    Config cfg;
    cfg.nkeys = 2048;
    cfg.radix = 256;
    cfg.maxKeyLog2 = 16;
    Radix rx(env, cfg);
    rx.run();
    std::uint64_t pauses = 0;
    for (int p = 0; p < 8; ++p)
        pauses += env.stats(p).pauses;
    EXPECT_GT(pauses, 0u);
}

TEST(Radix, DeterministicChecksum)
{
    auto once = [](int p) {
        rt::Env env({rt::Mode::Sim, p});
        Config cfg;
        cfg.nkeys = 4096;
        cfg.radix = 256;
        Radix rx(env, cfg);
        return rx.run().checksum;
    };
    double c = once(1);
    EXPECT_EQ(once(4), c);
    EXPECT_EQ(once(8), c);
}
