// Correctness tests for the blocked dense LU kernel.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/lu/lu.h"

using namespace splash;
using namespace splash::apps::lu;

namespace {

/** Max |(L*U)_{ij} - A_{ij}| over the matrix. */
double
reconstructionError(const Lu& lu)
{
    int n = lu.n();
    double err = 0.0;
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            double s = 0.0;
            int m = std::min(i, j);
            for (int k = 0; k <= m; ++k) {
                double l = (k == i) ? 1.0 : (k < i ? lu.elem(i, k) : 0.0);
                double u = (k <= j) ? lu.elem(k, j) : 0.0;
                s += l * u;
            }
            err = std::max(err, std::abs(s - lu.originalElem(i, j)));
        }
    }
    return err;
}

} // namespace

TEST(Lu, FactorsSmallMatrixSingleProcessor)
{
    rt::Env env({rt::Mode::Sim, 1});
    Config cfg;
    cfg.n = 32;
    cfg.block = 8;
    Lu lu(env, cfg);
    lu.run();
    EXPECT_LT(reconstructionError(lu), 1e-9);
}

class LuParallel : public ::testing::TestWithParam<int>
{};

TEST_P(LuParallel, FactorizationCorrectAcrossProcessorCounts)
{
    rt::Env env({rt::Mode::Sim, GetParam()});
    Config cfg;
    cfg.n = 64;
    cfg.block = 8;
    Lu lu(env, cfg);
    lu.run();
    EXPECT_LT(reconstructionError(lu), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Procs, LuParallel,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(Lu, BlockSizeDoesNotChangeResult)
{
    double c8, c16;
    {
        rt::Env env({rt::Mode::Sim, 4});
        Config cfg;
        cfg.n = 64;
        cfg.block = 8;
        Lu lu(env, cfg);
        c8 = lu.run().checksum;
    }
    {
        rt::Env env({rt::Mode::Sim, 4});
        Config cfg;
        cfg.n = 64;
        cfg.block = 16;
        Lu lu(env, cfg);
        c16 = lu.run().checksum;
    }
    EXPECT_NEAR(c8, c16, 1e-9 * std::abs(c8));
}

TEST(Lu, ScatterOwnershipCoversAllProcessors)
{
    rt::Env env({rt::Mode::Sim, 8});
    Config cfg;
    cfg.n = 64;
    cfg.block = 8;
    Lu lu(env, cfg);
    std::vector<int> owned(8, 0);
    for (int bi = 0; bi < lu.nBlocks(); ++bi)
        for (int bj = 0; bj < lu.nBlocks(); ++bj)
            ++owned[lu.ownerOf(bi, bj)];
    for (int p = 0; p < 8; ++p)
        EXPECT_EQ(owned[p], 8 * 8 / 8) << "proc " << p;
}

TEST(Lu, CountsExpectedFlopsOrder)
{
    rt::Env env({rt::Mode::Sim, 4});
    Config cfg;
    cfg.n = 64;
    cfg.block = 8;
    Lu lu(env, cfg);
    lu.run();
    // LU is ~ 2/3 n^3 flops.
    double expect = 2.0 / 3.0 * 64.0 * 64.0 * 64.0;
    auto got = double(env.totalStats().flops);
    EXPECT_GT(got, 0.8 * expect);
    EXPECT_LT(got, 1.5 * expect);
}

TEST(Lu, DeterministicAcrossProcessorCounts)
{
    auto run = [](int p) {
        rt::Env env({rt::Mode::Sim, p});
        Config cfg;
        cfg.n = 64;
        cfg.block = 8;
        Lu lu(env, cfg);
        return lu.run().checksum;
    };
    double c1 = run(1);
    EXPECT_NEAR(run(4), c1, 1e-12 * std::abs(c1));
    EXPECT_NEAR(run(8), c1, 1e-12 * std::abs(c1));
}
