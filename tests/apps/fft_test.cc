// Correctness tests for the FFT kernel.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/fft/fft.h"
#include "base/rng.h"

using namespace splash;
using namespace splash::apps::fft;

namespace {

constexpr double kPi = 3.14159265358979323846;

std::vector<Complex>
naiveDft(const std::vector<Complex>& x, int direction)
{
    long n = static_cast<long>(x.size());
    std::vector<Complex> out(n);
    for (long k = 0; k < n; ++k) {
        double re = 0, im = 0;
        for (long j = 0; j < n; ++j) {
            double ang = direction * 2.0 * kPi * j * k / double(n);
            double c = std::cos(ang), s = std::sin(ang);
            re += x[j].re * c - x[j].im * s;
            im += x[j].re * s + x[j].im * c;
        }
        out[k] = {re, im};
    }
    return out;
}

double
maxAbsDiff(const std::vector<Complex>& a, const std::vector<Complex>& b)
{
    double m = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        m = std::max(m, std::abs(a[i].re - b[i].re));
        m = std::max(m, std::abs(a[i].im - b[i].im));
    }
    return m;
}

} // namespace

TEST(Fft, MatchesNaiveDftSingleProcessor)
{
    rt::Env env({rt::Mode::Sim, 1});
    Config cfg;
    cfg.log2n = 6;  // 64 points
    Fft fft(env, cfg);
    Rng rng(cfg.seed);
    std::vector<Complex> in(64);
    for (auto& v : in) {
        v.re = rng.uniform(-1.0, 1.0);
        v.im = rng.uniform(-1.0, 1.0);
    }
    fft.setInput(in);
    fft.run();
    EXPECT_LT(maxAbsDiff(fft.output(), naiveDft(in, -1)), 1e-9);
}

class FftParallel : public ::testing::TestWithParam<int>
{};

TEST_P(FftParallel, MatchesNaiveDftAcrossProcessorCounts)
{
    int p = GetParam();
    rt::Env env({rt::Mode::Sim, p});
    Config cfg;
    cfg.log2n = 8;  // 256 points, root 16
    Fft fft(env, cfg);
    Rng rng(7);
    std::vector<Complex> in(256);
    for (auto& v : in) {
        v.re = rng.uniform(-1.0, 1.0);
        v.im = rng.uniform(-1.0, 1.0);
    }
    fft.setInput(in);
    fft.run();
    EXPECT_LT(maxAbsDiff(fft.output(), naiveDft(in, -1)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Procs, FftParallel,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(Fft, InverseRoundTrip)
{
    rt::Env env({rt::Mode::Sim, 4});
    Config fwd;
    fwd.log2n = 10;
    Fft f(env, fwd);
    Rng rng(99);
    std::vector<Complex> in(1 << 10);
    for (auto& v : in) {
        v.re = rng.uniform(-1.0, 1.0);
        v.im = rng.uniform(-1.0, 1.0);
    }
    f.setInput(in);
    f.run();
    std::vector<Complex> freq = f.output();

    Config inv = fwd;
    inv.direction = +1;
    Fft g(env, inv);
    g.setInput(freq);
    g.run();
    EXPECT_LT(maxAbsDiff(g.output(), in), 1e-9);
}

TEST(Fft, ParsevalEnergyConserved)
{
    rt::Env env({rt::Mode::Sim, 2});
    Config cfg;
    cfg.log2n = 8;
    Fft f(env, cfg);
    Rng rng(3);
    std::vector<Complex> in(256);
    double e_time = 0;
    for (auto& v : in) {
        v.re = rng.uniform(-1.0, 1.0);
        v.im = rng.uniform(-1.0, 1.0);
        e_time += v.re * v.re + v.im * v.im;
    }
    f.setInput(in);
    f.run();
    double e_freq = 0;
    for (const auto& v : f.output())
        e_freq += v.re * v.re + v.im * v.im;
    EXPECT_NEAR(e_freq / 256.0, e_time, 1e-9 * e_time);
}

TEST(Fft, DeterministicAcrossRuns)
{
    auto once = [] {
        rt::Env env({rt::Mode::Sim, 4});
        Config cfg;
        cfg.log2n = 10;
        Fft f(env, cfg);
        return f.run().checksum;
    };
    EXPECT_EQ(once(), once());
}

TEST(Fft, CountsFlopsAndBarriers)
{
    rt::Env env({rt::Mode::Sim, 4});
    Config cfg;
    cfg.log2n = 10;
    Fft f(env, cfg);
    f.run();
    auto t = env.totalStats();
    // Two row-FFT phases: 2 * (n/2) * log2(root) butterflies * 10 flops
    // plus twiddle (6 per point) and table setup.
    std::uint64_t butterflies = 2ull * (1 << 9) * 5;
    EXPECT_GE(t.flops, butterflies * 10);
    EXPECT_GT(env.stats(0).barriers, 2u);
    EXPECT_GT(t.reads, 0u);
    EXPECT_GT(t.writes, 0u);
}
