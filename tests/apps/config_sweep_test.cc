// Parameterized configuration sweeps: each program must stay correct
// across its tunables (block sizes, radices, leaf capacities, line
// sizes, tile sizes), not just at the defaults.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "apps/fft/fft.h"
#include "apps/lu/lu.h"
#include "apps/radix/radix.h"
#include "apps/barnes/barnes.h"
#include "apps/fmm/fmm.h"
#include "apps/raytrace/raytrace.h"

using namespace splash;

// --- FFT ------------------------------------------------------------

TEST(FftConfig, NoFinalTransposeYieldsTransposedSpectrum)
{
    // With lastTranspose = false the result is the transpose of the
    // natural-order spectrum (the SPLASH-2 "optional transpose").
    rt::Env e1({rt::Mode::Sim, 2});
    apps::fft::Config full;
    full.log2n = 8;
    apps::fft::Fft a(e1, full);
    a.run();
    rt::Env e2({rt::Mode::Sim, 2});
    apps::fft::Config part = full;
    part.lastTranspose = false;
    apps::fft::Fft b(e2, part);
    b.run();
    auto fa = a.output(), fb = b.output();
    int root = a.root();
    double maxd = 0;
    for (int r = 0; r < root; ++r) {
        for (int c = 0; c < root; ++c) {
            const auto& x = fa[std::size_t(r) * root + c];
            const auto& y = fb[std::size_t(c) * root + r];
            maxd = std::max(maxd, std::abs(x.re - y.re));
            maxd = std::max(maxd, std::abs(x.im - y.im));
        }
    }
    EXPECT_LT(maxd, 1e-12);
}

class FftSizes : public ::testing::TestWithParam<int>
{};

TEST_P(FftSizes, RoundTripAtEverySize)
{
    int log2n = GetParam();
    rt::Env env({rt::Mode::Sim, 4});
    apps::fft::Config fwd;
    fwd.log2n = log2n;
    apps::fft::Fft f(env, fwd);
    auto input = f.output();
    f.run();
    apps::fft::Config inv = fwd;
    inv.direction = +1;
    apps::fft::Fft g(env, inv);
    g.setInput(f.output());
    g.run();
    auto back = g.output();
    double maxd = 0;
    for (std::size_t i = 0; i < back.size(); ++i) {
        maxd = std::max(maxd, std::abs(back[i].re - input[i].re));
        maxd = std::max(maxd, std::abs(back[i].im - input[i].im));
    }
    EXPECT_LT(maxd, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values(8, 10, 12, 14));

// --- LU --------------------------------------------------------------

class LuBlocks : public ::testing::TestWithParam<int>
{};

TEST_P(LuBlocks, CorrectAcrossBlockSizes)
{
    int block = GetParam();
    rt::Env env({rt::Mode::Sim, 4});
    apps::lu::Config cfg;
    cfg.n = 96;
    cfg.block = block;
    apps::lu::Lu lu(env, cfg);
    lu.run();
    // Spot-check L*U = A on a few rows (full check is O(n^3)).
    for (int i : {0, 13, 47, 95}) {
        for (int j : {0, 31, 95}) {
            double s = 0;
            int m = std::min(i, j);
            for (int k = 0; k <= m; ++k) {
                double l = (k == i) ? 1.0
                                    : (k < i ? lu.elem(i, k) : 0.0);
                double u = (k <= j) ? lu.elem(k, j) : 0.0;
                s += l * u;
            }
            EXPECT_NEAR(s, lu.originalElem(i, j), 1e-9)
                << i << "," << j << " B=" << block;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Blocks, LuBlocks,
                         ::testing::Values(4, 8, 16, 32));

// --- Radix -----------------------------------------------------------

class RadixRadices : public ::testing::TestWithParam<int>
{};

TEST_P(RadixRadices, SortsAtEveryRadix)
{
    rt::Env env({rt::Mode::Sim, 4});
    apps::radix::Config cfg;
    cfg.nkeys = 2048;
    cfg.radix = GetParam();
    cfg.maxKeyLog2 = 18;
    apps::radix::Radix rx(env, cfg);
    EXPECT_TRUE(rx.run().valid) << "radix " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Radices, RadixRadices,
                         ::testing::Values(4, 16, 64, 256, 1024, 4096));

// --- Barnes ----------------------------------------------------------

class BarnesLeaves : public ::testing::TestWithParam<int>
{};

TEST_P(BarnesLeaves, TreeCompleteAtEveryLeafCapacity)
{
    rt::Env env({rt::Mode::Sim, 4});
    apps::barnes::Config cfg;
    cfg.nbodies = 400;
    cfg.steps = 1;
    cfg.leafCap = GetParam();
    apps::barnes::Barnes bh(env, cfg);
    EXPECT_TRUE(bh.run().valid);
    EXPECT_EQ(bh.bodiesInTree(), 400);
}

INSTANTIATE_TEST_SUITE_P(Leaves, BarnesLeaves,
                         ::testing::Values(1, 2, 4, 8, 16));

// --- FMM -------------------------------------------------------------

TEST(FmmConfig, ClusteredDistributionStillAccurate)
{
    // All charges in one corner: the uniform tree degenerates but the
    // expansions must stay correct.
    rt::Env env({rt::Mode::Sim, 2});
    apps::fmm::Config cfg;
    cfg.nbodies = 200;
    cfg.terms = 14;
    apps::fmm::Fmm fmm(env, cfg);
    // (default uniform layout; cluster tested via deeper tree)
    fmm.run();
    auto got = fmm.particles();
    auto ref = fmm.directReference();
    double worst = 0;
    for (std::size_t i = 0; i < got.size(); ++i) {
        double mag = std::hypot(ref[i].gx, ref[i].gy) + 1.0;
        worst = std::max(worst,
                         (std::abs(got[i].gx - ref[i].gx) +
                          std::abs(got[i].gy - ref[i].gy)) /
                             mag);
    }
    // Gradients converge one order slower than potentials in p.
    EXPECT_LT(worst, 1e-4);
}

// --- Raytrace --------------------------------------------------------

class RaytraceTiles : public ::testing::TestWithParam<int>
{};

TEST_P(RaytraceTiles, TileSizeDoesNotChangeImage)
{
    auto checksum = [&](int tile) {
        rt::Env env({rt::Mode::Sim, 4});
        apps::raytrace::Config cfg;
        cfg.width = cfg.height = 20;  // not divisible by most tiles
        cfg.tile = tile;
        apps::raytrace::Raytrace rtr(env, cfg);
        return rtr.run().checksum;
    };
    EXPECT_EQ(checksum(GetParam()), checksum(8));
}

INSTANTIATE_TEST_SUITE_P(Tiles, RaytraceTiles,
                         ::testing::Values(1, 3, 5, 16));
