// Correctness tests for the volume renderer.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/volrend/volrend.h"

using namespace splash;
using namespace splash::apps::volrend;

namespace {

Config
ballCfg()
{
    Config cfg;
    cfg.size = 32;
    cfg.width = 32;
    cfg.frames = 1;
    cfg.phantom = 1;  // centered opaque ball, radius size/4
    return cfg;
}

} // namespace

TEST(Volrend, BallSilhouetteMatchesGeometry)
{
    rt::Env env({rt::Mode::Sim, 4});
    Config cfg = ballCfg();
    Volrend vr(env, cfg);
    vr.run();
    auto img = vr.image();
    int w = cfg.width;
    // The projected ball radius is size/4 voxels = w/(1.4*4) pixels of
    // the 1.4x-volume-wide viewport.
    double r_pix = w / (1.4 * 4.0);
    int lit_inside = 0, total_inside = 0, lit_outside = 0,
        total_outside = 0;
    for (int y = 0; y < w; ++y) {
        for (int x = 0; x < w; ++x) {
            double dx = x - w / 2.0, dy = y - w / 2.0;
            double r = std::sqrt(dx * dx + dy * dy);
            bool lit = img[std::size_t(y) * w + x] > 0.02;
            if (r < r_pix * 0.8) {
                ++total_inside;
                lit_inside += lit;
            } else if (r > r_pix * 1.3) {
                ++total_outside;
                lit_outside += lit;
            }
        }
    }
    EXPECT_EQ(lit_inside, total_inside);   // ball interior renders
    EXPECT_EQ(lit_outside, 0);             // empty space stays black
}

TEST(Volrend, OctreeLeapingDoesNotChangeTheImage)
{
    Config a = ballCfg();
    a.useOctree = true;
    Config b = ballCfg();
    b.useOctree = false;
    rt::Env e1({rt::Mode::Sim, 2});
    Volrend va(e1, a);
    Result ra = va.run();
    rt::Env e2({rt::Mode::Sim, 2});
    Volrend vb(e2, b);
    Result rb = vb.run();
    auto ia = va.image(), ib = vb.image();
    double maxd = 0;
    for (std::size_t i = 0; i < ia.size(); ++i)
        maxd = std::max(maxd, std::abs(ia[i] - ib[i]));
    // Leaps only skip fully transparent blocks; sample phase may shift
    // slightly at block boundaries.
    EXPECT_LT(maxd, 0.08);
    // ... and it must actually reduce sampling work.
    EXPECT_LT(ra.samples, rb.samples);
}

TEST(Volrend, EarlyRayTerminationReducesSamples)
{
    auto samples = [](double cutoff) {
        rt::Env env({rt::Mode::Sim, 2});
        Config cfg = ballCfg();
        cfg.cutoff = cutoff;
        Volrend vr(env, cfg);
        return vr.run().samples;
    };
    EXPECT_LT(samples(0.5), samples(0.999));
}

class VolrendProcs : public ::testing::TestWithParam<int>
{};

TEST_P(VolrendProcs, ImageIdenticalAcrossProcessorCounts)
{
    rt::Env env({rt::Mode::Sim, GetParam()});
    Config cfg;
    cfg.size = 32;
    cfg.width = 32;
    cfg.frames = 1;
    Volrend vr(env, cfg);
    vr.run();
    rt::Env env1({rt::Mode::Sim, 1});
    Volrend ref(env1, cfg);
    ref.run();
    auto a = vr.image(), b = ref.image();
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "pixel " << i;
}

INSTANTIATE_TEST_SUITE_P(Procs, VolrendProcs,
                         ::testing::Values(2, 4, 8, 16));

TEST(Volrend, HeadPhantomRendersSkullStructure)
{
    rt::Env env({rt::Mode::Sim, 4});
    Config cfg;
    cfg.size = 32;
    cfg.width = 48;
    cfg.frames = 2;  // exercises the rotating viewpoint
    Volrend vr(env, cfg);
    Result r = vr.run();
    EXPECT_TRUE(r.valid);
    auto img = vr.image();
    // Center of the head is visible, corners are background.
    EXPECT_GT(img[std::size_t(24) * 48 + 24], 0.05);
    EXPECT_LT(img[0], 0.01);
    EXPECT_LT(img[48 * 48 - 1], 0.01);
}

TEST(Volrend, DeterministicChecksum)
{
    auto once = [] {
        rt::Env env({rt::Mode::Sim, 4});
        Config cfg;
        cfg.size = 16;
        cfg.width = 24;
        Volrend vr(env, cfg);
        return vr.run().checksum;
    };
    EXPECT_EQ(once(), once());
}
