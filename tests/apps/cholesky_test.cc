// Correctness tests for the sparse Cholesky kernel.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/cholesky/cholesky.h"

using namespace splash;
using namespace splash::apps::cholesky;

namespace {

double
reconstructionError(const Cholesky& ch)
{
    auto llt = ch.reconstructDense();
    auto a = ch.denseA();
    double err = 0;
    for (std::size_t k = 0; k < a.size(); ++k)
        err = std::max(err, std::abs(llt[k] - a[k]));
    return err;
}

} // namespace

TEST(Cholesky, FactorsSmallGridSingleProcessor)
{
    rt::Env env({rt::Mode::Sim, 1});
    Config cfg;
    cfg.grid = 6;
    Cholesky ch(env, cfg);
    Result r = ch.run();
    EXPECT_TRUE(r.valid);
    EXPECT_LT(reconstructionError(ch), 1e-10);
}

class CholeskyProcs : public ::testing::TestWithParam<int>
{};

TEST_P(CholeskyProcs, FactorizationCorrectAcrossProcessorCounts)
{
    rt::Env env({rt::Mode::Sim, GetParam()});
    Config cfg;
    cfg.grid = 8;
    Cholesky ch(env, cfg);
    Result r = ch.run();
    EXPECT_TRUE(r.valid);
    EXPECT_LT(reconstructionError(ch), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Procs, CholeskyProcs,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(Cholesky, FillInExceedsInputNonzeros)
{
    // Sparse factorization of a grid Laplacian generates fill.
    rt::Env env({rt::Mode::Sim, 2});
    Config cfg;
    cfg.grid = 10;
    Cholesky ch(env, cfg);
    long input_nnz = 0;
    {
        auto a = ch.denseA();
        for (double v : a)
            if (v != 0.0)
                ++input_nnz;
    }
    ch.run();
    // Lower-triangle input nnz = (input_nnz + n) / 2.
    EXPECT_GT(ch.nnzL(), (input_nnz + ch.n()) / 2);
}

TEST(Cholesky, NoBarriersDuringNumericPhase)
{
    // Self-scheduling: exactly the one startup barrier per processor.
    rt::Env env({rt::Mode::Sim, 4});
    Config cfg;
    cfg.grid = 8;
    Cholesky ch(env, cfg);
    ch.run();
    for (int p = 0; p < 4; ++p)
        EXPECT_EQ(env.stats(p).barriers, 1u) << "proc " << p;
}

TEST(Cholesky, DeterministicChecksumAcrossProcessorCounts)
{
    auto once = [](int p) {
        rt::Env env({rt::Mode::Sim, p});
        Config cfg;
        cfg.grid = 8;
        Cholesky ch(env, cfg);
        return ch.run().checksum;
    };
    double c1 = once(1);
    // The factor is unique (SPD): any schedule gives the same L up to
    // floating-point rounding in update order.
    EXPECT_NEAR(once(4), c1, 1e-9 * std::abs(c1));
    EXPECT_NEAR(once(8), c1, 1e-9 * std::abs(c1));
}

TEST(Cholesky, LargerGridStillCorrect)
{
    rt::Env env({rt::Mode::Sim, 8});
    Config cfg;
    cfg.grid = 12;
    Cholesky ch(env, cfg);
    Result r = ch.run();
    EXPECT_TRUE(r.valid);
    EXPECT_LT(reconstructionError(ch), 1e-9);
}
