// Correctness tests for Water-Nsquared and Water-Spatial.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/water/water_nsq.h"
#include "apps/water/water_sp.h"

using namespace splash;
using namespace splash::apps::water;

namespace {

MdConfig
smallCfg()
{
    MdConfig cfg;
    cfg.nmol = 64;
    cfg.steps = 1;
    cfg.density = 0.15;  // big box: >= 3 cells per axis for Water-Sp
    return cfg;
}

double
netForceMagnitude(const std::vector<double>& f)
{
    double net[3] = {0, 0, 0};
    for (std::size_t m = 0; m < f.size() / 3; ++m)
        for (int d = 0; d < 3; ++d)
            net[d] += f[3 * m + d];
    return std::sqrt(net[0] * net[0] + net[1] * net[1] +
                     net[2] * net[2]);
}

} // namespace

TEST(WaterNsq, NewtonsThirdLawHolds)
{
    rt::Env env({rt::Mode::Sim, 4});
    WaterNsq w(env, smallCfg());
    w.run();
    EXPECT_LT(netForceMagnitude(w.forces()), 1e-9);
}

TEST(WaterNsq, EnergyIsBoundedOverSteps)
{
    rt::Env env({rt::Mode::Sim, 4});
    MdConfig cfg = smallCfg();
    cfg.steps = 10;
    WaterNsq w(env, cfg);
    MdResult r = w.run();
    EXPECT_TRUE(r.valid);
    // A stable reduced-LJ system: energies stay modest per particle.
    EXPECT_LT(std::abs(r.kinetic) / cfg.nmol, 10.0);
    EXPECT_LT(std::abs(r.potential) / cfg.nmol, 10.0);
}

class WaterNsqProcs : public ::testing::TestWithParam<int>
{};

TEST_P(WaterNsqProcs, TrajectoryIndependentOfProcessorCount)
{
    auto once = [](int p) {
        rt::Env env({rt::Mode::Sim, p});
        MdConfig cfg = smallCfg();
        cfg.steps = 3;
        WaterNsq w(env, cfg);
        return w.run().checksum;
    };
    double c1 = once(1);
    EXPECT_NEAR(once(GetParam()), c1, 1e-7 * std::abs(c1));
}

INSTANTIATE_TEST_SUITE_P(Procs, WaterNsqProcs,
                         ::testing::Values(2, 4, 8, 16));

TEST(WaterSp, ForcesMatchNsquaredExactly)
{
    // Same configuration, one step: the cell method must find exactly
    // the same interacting pairs as the O(n^2) half shell.
    MdConfig cfg = smallCfg();
    rt::Env e1({rt::Mode::Sim, 4});
    WaterNsq a(e1, cfg);
    a.run();
    rt::Env e2({rt::Mode::Sim, 4});
    WaterSp b(e2, cfg);
    EXPECT_GE(b.cellsPerAxis(), 3);
    b.run();
    auto fa = a.forces(), fb = b.forces();
    double max_diff = 0;
    for (std::size_t k = 0; k < fa.size(); ++k)
        max_diff = std::max(max_diff, std::abs(fa[k] - fb[k]));
    EXPECT_LT(max_diff, 1e-9);
    auto pa = a.positions(), pb = b.positions();
    for (std::size_t k = 0; k < pa.size(); ++k)
        EXPECT_NEAR(pa[k], pb[k], 1e-9);
}

TEST(WaterSp, MultiStepStaysConsistentWithNsquared)
{
    MdConfig cfg = smallCfg();
    cfg.steps = 5;
    rt::Env e1({rt::Mode::Sim, 2});
    WaterNsq a(e1, cfg);
    MdResult ra = a.run();
    rt::Env e2({rt::Mode::Sim, 2});
    WaterSp b(e2, cfg);
    MdResult rb = b.run();
    EXPECT_NEAR(ra.checksum, rb.checksum, 1e-6 * std::abs(ra.checksum));
    EXPECT_NEAR(ra.potential, rb.potential,
                1e-6 * std::abs(ra.potential) + 1e-9);
}

TEST(WaterSp, UsesCellLocksForListUpdates)
{
    rt::Env env({rt::Mode::Sim, 8});
    MdConfig cfg = smallCfg();
    cfg.nmol = 128;
    WaterSp w(env, cfg);
    w.run();
    std::uint64_t locks = 0;
    for (int p = 0; p < 8; ++p)
        locks += env.stats(p).locks;
    // At least one lock per molecule insertion plus force merges.
    EXPECT_GT(locks, 128u);
}

TEST(WaterNsq, PairCoverageIsExact)
{
    // Potential energy from the parallel half-shell sweep must equal a
    // serial direct double loop over unique pairs.
    MdConfig cfg = smallCfg();
    cfg.steps = 1;
    rt::Env env({rt::Mode::Sim, 4});
    WaterNsq w(env, cfg);
    MdResult r = w.run();

    // Serial reference on the *predicted* positions: rerun the same
    // model on one processor; the potential must match exactly.
    rt::Env env1({rt::Mode::Sim, 1});
    WaterNsq w1(env1, cfg);
    MdResult r1 = w1.run();
    EXPECT_NEAR(r.potential, r1.potential,
                1e-9 * (std::abs(r.potential) + 1));
}
