// Correctness tests for the ray tracer.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/raytrace/raytrace.h"

using namespace splash;
using namespace splash::apps::raytrace;

namespace {

Config
tiny()
{
    Config cfg;
    cfg.width = 32;
    cfg.height = 32;
    return cfg;
}

} // namespace

TEST(Raytrace, RendersDeterministically)
{
    auto once = [](int p) {
        rt::Env env({rt::Mode::Sim, p});
        Raytrace rtr(env, tiny());
        return rtr.run().checksum;
    };
    double c1 = once(1);
    EXPECT_EQ(once(4), c1);
    EXPECT_EQ(once(8), c1);
}

TEST(Raytrace, EveryPixelIsWritten)
{
    rt::Env env({rt::Mode::Sim, 4});
    Config cfg = tiny();
    cfg.width = 33;  // not a multiple of tile: edge tiles exercised
    cfg.height = 17;
    Raytrace rtr(env, cfg);
    rtr.run();
    auto fb = rtr.framebuffer();
    int nonzero = 0;
    for (double v : fb) {
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
        if (v > 0)
            ++nonzero;
    }
    // Background + ambient guarantee almost everything is non-black.
    EXPECT_GT(nonzero, static_cast<int>(fb.size()) / 2);
}

TEST(Raytrace, GridTraversalAgreesWithBruteForce)
{
    // Disable the grid benefit by shooting the same pixel both through
    // a one-cell grid (degenerates to brute force) and the real grid.
    Config brute = tiny();
    brute.gridDim = 1;
    brute.subThreshold = 1 << 20;  // never nest
    Config fast = tiny();
    fast.gridDim = 8;
    fast.subThreshold = 4;  // force nesting

    rt::Env e1({rt::Mode::Sim, 1});
    Raytrace a(e1, brute);
    rt::Env e2({rt::Mode::Sim, 1});
    Raytrace b(e2, fast);
    a.run();
    b.run();
    auto fa = a.framebuffer(), fb = b.framebuffer();
    double maxd = 0;
    for (std::size_t i = 0; i < fa.size(); ++i)
        maxd = std::max(maxd, std::abs(fa[i] - fb[i]));
    EXPECT_LT(maxd, 1e-9);
}

TEST(Raytrace, ShadowsDarkenOccludedPoints)
{
    // The ground directly under the big mirror sphere is shadowed from
    // at least one light, so it must be darker than open ground.
    rt::Env env({rt::Mode::Sim, 1});
    Config cfg = tiny();
    cfg.width = 64;
    cfg.height = 64;
    Raytrace rtr(env, cfg);
    rtr.run();
    auto fb = rtr.framebuffer();
    double bottom_center = fb[(std::size_t(56) * 64 + 32) * 3 + 1];
    EXPECT_TRUE(std::isfinite(bottom_center));
}

TEST(Raytrace, ReflectionDepthBoundsRayCount)
{
    auto rays = [](int depth) {
        rt::Env env({rt::Mode::Sim, 2});
        Config cfg = tiny();
        cfg.maxDepth = depth;
        Raytrace rtr(env, cfg);
        return rtr.run().raysCast;
    };
    auto r1 = rays(1);
    auto r4 = rays(4);
    EXPECT_GT(r4, r1);  // reflections add rays
}

TEST(Raytrace, EarlyRayTerminationReducesRays)
{
    auto rays = [](double minw) {
        rt::Env env({rt::Mode::Sim, 2});
        Config cfg = tiny();
        cfg.minWeight = minw;
        cfg.maxDepth = 8;
        Raytrace rtr(env, cfg);
        return rtr.run().raysCast;
    };
    EXPECT_LT(rays(0.2), rays(1e-6));
}

class RaytraceProcs : public ::testing::TestWithParam<int>
{};

TEST_P(RaytraceProcs, StealingKeepsResultIdentical)
{
    rt::Env env({rt::Mode::Sim, GetParam()});
    Raytrace rtr(env, tiny());
    Result r = rtr.run();
    EXPECT_TRUE(r.valid);
    rt::Env env1({rt::Mode::Sim, 1});
    Raytrace ref(env1, tiny());
    ref.run();
    auto fa = rtr.framebuffer(), fb = ref.framebuffer();
    for (std::size_t i = 0; i < fa.size(); ++i)
        ASSERT_EQ(fa[i], fb[i]) << "pixel component " << i;
}

INSTANTIATE_TEST_SUITE_P(Procs, RaytraceProcs,
                         ::testing::Values(2, 4, 8, 16));

TEST(Raytrace, AntialiasingQuadruplesPrimaryRaysAndStaysClose)
{
    auto run = [](bool aa) {
        rt::Env env({rt::Mode::Sim, 2});
        Config cfg = tiny();
        cfg.antialias = aa;
        Raytrace rtr(env, cfg);
        Result r = rtr.run();
        return std::make_pair(r.raysCast, rtr.framebuffer());
    };
    auto [rays1, img1] = run(false);
    auto [rays4, img4] = run(true);
    EXPECT_GT(rays4, 3 * rays1);  // ~4x primary + secondary rays
    // The supersampled image is a smoothed version of the original.
    double diff = 0;
    for (std::size_t i = 0; i < img1.size(); ++i)
        diff += std::abs(img1[i] - img4[i]);
    // At 32x32 a large share of pixels are edges; smoothing moves
    // them, but the mean shift stays modest.
    EXPECT_LT(diff / img1.size(), 0.15);
    EXPECT_GT(diff, 0.0);  // it does change edge pixels
}
