// Integration tests: the whole suite runs valid under the harness, at
// several processor counts, with and without the memory system.
#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "harness/report.h"

using namespace splash;
using namespace splash::harness;

TEST(Harness, SuiteHasTwelveProgramsInPaperOrder)
{
    const auto& apps = suite();
    ASSERT_EQ(apps.size(), 12u);
    EXPECT_EQ(apps.front()->name(), "Barnes");
    EXPECT_EQ(apps.back()->name(), "Water-Sp");
    EXPECT_NE(findApp("fft"), nullptr);
    EXPECT_NE(findApp("WATER-NSQ"), nullptr);
    EXPECT_EQ(findApp("nosuch"), nullptr);
}

class SuiteRuns : public ::testing::TestWithParam<int>
{};

TEST_P(SuiteRuns, EveryProgramValidUnderPram)
{
    AppConfig cfg;
    cfg.scale = 0.1;
    for (App* app : suite()) {
        RunStats r = runPram(*app, GetParam(), cfg);
        EXPECT_TRUE(r.valid) << app->name();
        EXPECT_GT(r.elapsed, 0u) << app->name();
        EXPECT_GT(r.exec.instructions(), 0u) << app->name();
        if (app->isFloatingPoint()) {
            EXPECT_GT(r.exec.flops, 0u) << app->name();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Procs, SuiteRuns, ::testing::Values(1, 4, 16));

TEST(Harness, EveryProgramValidUnderMemSystem)
{
    AppConfig cfg;
    cfg.scale = 0.1;
    sim::CacheConfig cache;
    cache.size = 64 << 10;  // small cache: exercises replacements
    for (App* app : suite()) {
        RunStats r = runWithMemSystem(*app, 4, cache, cfg);
        EXPECT_TRUE(r.valid) << app->name();
        EXPECT_GT(r.mem.accesses(), 0u) << app->name();
        // Traffic sanity: every component non-negative and total
        // consistent.
        EXPECT_EQ(r.mem.totalTraffic(),
                  r.mem.remoteData() + r.mem.remoteOverhead +
                      r.mem.localData)
            << app->name();
    }
}

TEST(Harness, SweepAndMemSystemSeeSameAccessCounts)
{
    AppConfig cfg;
    cfg.scale = 0.1;
    App* fft = findApp("FFT");
    sim::CacheConfig cache;
    RunStats a = runWithMemSystem(*fft, 4, cache, cfg);
    sim::SweepConfig sc;
    sc.nprocs = 4;
    sim::CacheSweep sweep(sc);
    RunStats b = runWithSweep(*fft, 4, sweep, cfg);
    // Same deterministic program: identical shared-reference streams.
    EXPECT_EQ(a.exec.reads, b.exec.reads);
    EXPECT_EQ(a.exec.writes, b.exec.writes);
}

TEST(Harness, ScaleChangesProblemSize)
{
    App* lu = findApp("LU");
    AppConfig small;
    small.scale = 0.25;
    AppConfig big;
    big.scale = 1.0;
    RunStats a = runPram(*lu, 2, small);
    RunStats b = runPram(*lu, 2, big);
    EXPECT_GT(b.exec.flops, 2 * a.exec.flops);
}
