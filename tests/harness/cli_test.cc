// Tests for the shared engine-flag parser: every invalid value --
// nonsensical job counts, zero quanta, unknown modes, non-numeric
// garbage -- must be rejected loudly instead of silently falling back
// to a default, and valid values must land in the right SimOpts knob.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/cli.h"

using namespace splash::harness;

namespace {

/** Run parseEngineOpts over a synthetic command line. */
bool
parse(std::vector<std::string> words, EngineOpts* out)
{
    std::vector<std::string> full = {"prog"};
    full.insert(full.end(), words.begin(), words.end());
    std::vector<char*> argv;
    argv.reserve(full.size());
    for (auto& s : full)
        argv.push_back(s.data());
    Options opt(static_cast<int>(argv.size()), argv.data());
    return parseEngineOpts(opt, out);
}

/** Parse @p words, then run the mode-conflict matrix over them the
 *  way splash2run does.  Returns true when the combination is
 *  accepted end to end. */
bool
parseAndCheck(std::vector<std::string> words, std::string* err = nullptr)
{
    std::vector<std::string> full = {"prog"};
    full.insert(full.end(), words.begin(), words.end());
    std::vector<char*> argv;
    argv.reserve(full.size());
    for (auto& s : full)
        argv.push_back(s.data());
    Options opt(static_cast<int>(argv.size()), argv.data());
    EngineOpts eng;
    ::testing::internal::CaptureStderr();
    bool ok = parseEngineOpts(opt, &eng) && checkModeConflicts(opt, eng);
    std::string captured = ::testing::internal::GetCapturedStderr();
    if (err)
        *err = captured;
    return ok;
}

} // namespace

TEST(EngineOpts, DefaultsParse)
{
    EngineOpts eng;
    ASSERT_TRUE(parse({}, &eng));
    EXPECT_EQ(eng.jobs, 1);
    EXPECT_EQ(eng.sim.quantum, 250u);
    EXPECT_EQ(eng.sim.sweepThreads, 0);
    EXPECT_EQ(eng.sim.checkPeriod, 0u);
}

TEST(EngineOpts, ValidValuesLand)
{
    EngineOpts eng;
    ASSERT_TRUE(parse({"--jobs", "4", "--quantum", "100", "--backend",
                       "thread", "--delivery", "direct", "--replicas",
                       "inline", "--sweep-threads", "2", "--check",
                       "512"},
                      &eng));
    EXPECT_EQ(eng.jobs, 4);
    EXPECT_EQ(eng.sim.quantum, 100u);
    EXPECT_EQ(eng.sim.backend, splash::rt::BackendKind::Thread);
    EXPECT_EQ(eng.sim.delivery, splash::rt::Delivery::Direct);
    EXPECT_EQ(eng.sim.replicas, Replicas::Inline);
    EXPECT_EQ(eng.sim.sweepThreads, 2);
    EXPECT_EQ(eng.sim.checkPeriod, 512u);
}

TEST(EngineOpts, RejectsBadJobCounts)
{
    EngineOpts eng;
    EXPECT_FALSE(parse({"--jobs", "0"}, &eng));
    EXPECT_FALSE(parse({"--jobs", "-3"}, &eng));
}

TEST(EngineOpts, RejectsBadQuanta)
{
    EngineOpts eng;
    EXPECT_FALSE(parse({"--quantum", "0"}, &eng));
    EXPECT_FALSE(parse({"--quantum", "-250"}, &eng));
}

TEST(EngineOpts, RejectsNegativeSweepThreadsAndCheck)
{
    EngineOpts eng;
    EXPECT_FALSE(parse({"--sweep-threads", "-1"}, &eng));
    EXPECT_FALSE(parse({"--check", "-1"}, &eng));
    // 0 stays meaningful for both (hardware concurrency / off).
    EXPECT_TRUE(parse({"--sweep-threads", "0", "--check", "0"}, &eng));
}

TEST(EngineOpts, RejectsUnknownModes)
{
    EngineOpts eng;
    EXPECT_FALSE(parse({"--replicas", "sometimes"}, &eng));
    EXPECT_FALSE(parse({"--backend", "coroutine"}, &eng));
    EXPECT_FALSE(parse({"--delivery", "postal"}, &eng));
}

TEST(EngineOpts, ProtocolNamesLand)
{
    EngineOpts eng;
    ASSERT_TRUE(parse({}, &eng));
    EXPECT_EQ(eng.sim.protocol, splash::sim::ProtocolKind::MESI);
    ASSERT_TRUE(parse({"--protocol", "msi"}, &eng));
    EXPECT_EQ(eng.sim.protocol, splash::sim::ProtocolKind::MSI);
    ASSERT_TRUE(parse({"--protocol", "mesi"}, &eng));
    EXPECT_EQ(eng.sim.protocol, splash::sim::ProtocolKind::MESI);
    ASSERT_TRUE(parse({"--protocol", "moesi"}, &eng));
    EXPECT_EQ(eng.sim.protocol, splash::sim::ProtocolKind::MOESI);
    ASSERT_TRUE(parse({"--protocol", "dragon"}, &eng));
    EXPECT_EQ(eng.sim.protocol, splash::sim::ProtocolKind::Dragon);
}

TEST(EngineOpts, RejectsUnknownProtocols)
{
    EngineOpts eng;
    EXPECT_FALSE(parse({"--protocol", "mosi"}, &eng));
    EXPECT_FALSE(eng.listRequested) << "an error is not a listing";
    // Names are exact and lowercase; no case folding, no prefixes.
    EXPECT_FALSE(parse({"--protocol", "MESI"}, &eng));
    EXPECT_FALSE(parse({"--protocol", "mes"}, &eng));
    EXPECT_FALSE(parse({"--protocol", ""}, &eng));
}

TEST(EngineOpts, RaceGranularitiesLand)
{
    EngineOpts eng;
    ASSERT_TRUE(parse({}, &eng));
    EXPECT_EQ(eng.sim.race, splash::sim::RaceGranularity::Off);
    ASSERT_TRUE(parse({"--race", "off"}, &eng));
    EXPECT_EQ(eng.sim.race, splash::sim::RaceGranularity::Off);
    ASSERT_TRUE(parse({"--race", "word"}, &eng));
    EXPECT_EQ(eng.sim.race, splash::sim::RaceGranularity::Word);
    ASSERT_TRUE(parse({"--race", "line"}, &eng));
    EXPECT_EQ(eng.sim.race, splash::sim::RaceGranularity::Line);
}

TEST(EngineOpts, RejectsUnknownRaceGranularities)
{
    EngineOpts eng;
    EXPECT_FALSE(parse({"--race", "byte"}, &eng));
    EXPECT_FALSE(parse({"--race", "on"}, &eng));
    // Names are exact and lowercase, like --protocol.
    EXPECT_FALSE(parse({"--race", "Word"}, &eng));
    EXPECT_FALSE(parse({"--race", "wordline"}, &eng));
    EXPECT_FALSE(parse({"--race", ""}, &eng));
}

TEST(EngineOpts, SweepModesLand)
{
    EngineOpts eng;
    ASSERT_TRUE(parse({}, &eng));
    EXPECT_EQ(eng.sim.sweep, splash::sim::SweepMode::Exact);
    EXPECT_FALSE(eng.sweepRequested)
        << "only an explicit --sweep turns splash2run into a sweep";
    ASSERT_TRUE(parse({"--sweep", "exact"}, &eng));
    EXPECT_EQ(eng.sim.sweep, splash::sim::SweepMode::Exact);
    EXPECT_TRUE(eng.sweepRequested);
    ASSERT_TRUE(parse({"--sweep", "model"}, &eng));
    EXPECT_EQ(eng.sim.sweep, splash::sim::SweepMode::Model);
    ASSERT_TRUE(parse({"--sweep", "both"}, &eng));
    EXPECT_EQ(eng.sim.sweep, splash::sim::SweepMode::Both);
}

TEST(EngineOpts, RejectsUnknownSweepModes)
{
    EngineOpts eng;
    EXPECT_FALSE(parse({"--sweep", "analytic"}, &eng));
    EXPECT_FALSE(eng.listRequested) << "an error is not a listing";
    // Names are exact and lowercase, like --protocol and --race.
    EXPECT_FALSE(parse({"--sweep", "Model"}, &eng));
    EXPECT_FALSE(parse({"--sweep", "exactmodel"}, &eng));
    EXPECT_FALSE(parse({"--sweep", ""}, &eng));
}

TEST(EngineOpts, RejectsSweepThreadsWithModelOnlySweep)
{
    // --sweep-threads sizes the exact engine's replay pool; with
    // --sweep model there is no exact engine, so an explicit value is
    // a contradiction, not a silent no-op.
    EngineOpts eng;
    EXPECT_FALSE(
        parse({"--sweep", "model", "--sweep-threads", "4"}, &eng));
    EXPECT_FALSE(
        parse({"--sweep-threads", "0", "--sweep", "model"}, &eng));
    // The exact engine rides along in Both mode, so the pool knob is
    // meaningful there -- and with the default (exact) engine.
    EXPECT_TRUE(
        parse({"--sweep", "both", "--sweep-threads", "4"}, &eng));
    EXPECT_TRUE(
        parse({"--sweep", "exact", "--sweep-threads", "4"}, &eng));
    EXPECT_TRUE(parse({"--sweep", "model"}, &eng));
}

TEST(EngineOpts, RecordAndReplayLand)
{
    EngineOpts eng;
    ASSERT_TRUE(parse({}, &eng));
    EXPECT_TRUE(eng.sim.record.empty());
    EXPECT_TRUE(eng.sim.replay.empty());

    // --record creates a missing store directory up front.
    const std::string dir =
        ::testing::TempDir() + "cli_record_" + std::to_string(::getpid());
    ASSERT_TRUE(parse({"--record", dir}, &eng));
    EXPECT_EQ(eng.sim.record, dir);
    struct stat st{};
    ASSERT_EQ(::stat(dir.c_str(), &st), 0);
    EXPECT_TRUE(S_ISDIR(st.st_mode));

    // --replay accepts any existing path (directory store or file).
    eng = EngineOpts{};
    ASSERT_TRUE(parse({"--replay", dir}, &eng));
    EXPECT_EQ(eng.sim.replay, dir);
    EXPECT_TRUE(eng.sim.record.empty());
}

TEST(EngineOpts, RecordReplayMutuallyExclusive)
{
    EngineOpts eng;
    EXPECT_FALSE(parse({"--record", ::testing::TempDir(), "--replay",
                        ::testing::TempDir()},
                       &eng));
}

TEST(EngineOpts, ReplayRejectsNonexistentPath)
{
    EngineOpts eng;
    EXPECT_FALSE(
        parse({"--replay", "/nonexistent/trace/store"}, &eng));
}

TEST(EngineOpts, RecordRejectsUncreatablePath)
{
    // A path under a regular file can never become a directory, so
    // this fails even when running as root (where plain W_OK checks
    // always pass).
    EngineOpts eng;
    EXPECT_FALSE(parse({"--record", "/dev/null/store"}, &eng));
}

TEST(EngineOpts, InterconnectNamesLand)
{
    EngineOpts eng;
    ASSERT_TRUE(parse({}, &eng));
    EXPECT_EQ(eng.sim.interconnect, splash::sim::Interconnect::Directory);
    EXPECT_FALSE(eng.interconnectRequested);
    ASSERT_TRUE(parse({"--interconnect", "directory"}, &eng));
    EXPECT_EQ(eng.sim.interconnect, splash::sim::Interconnect::Directory);
    EXPECT_TRUE(eng.interconnectRequested);
    ASSERT_TRUE(parse({"--interconnect", "bus"}, &eng));
    EXPECT_EQ(eng.sim.interconnect, splash::sim::Interconnect::Bus);
    EXPECT_TRUE(eng.interconnectRequested);
}

TEST(EngineOpts, RejectsUnknownInterconnects)
{
    EngineOpts eng;
    EXPECT_FALSE(parse({"--interconnect", "crossbar"}, &eng));
    // Names are exact and lowercase, like --protocol.
    EXPECT_FALSE(parse({"--interconnect", "Bus"}, &eng));
    EXPECT_FALSE(parse({"--interconnect", ""}, &eng));
}

// Contradictory mode combinations are rejected up front -- one
// harness or mode owns the whole run, so combining two would silently
// ignore one.  Every rejection carries the same message shape.
TEST(EngineOpts, ModeConflictMatrixRejected)
{
    const std::string dir = ::testing::TempDir();
    // Each injection harness conflicts with every other run mode.
    EXPECT_FALSE(parseAndCheck({"--inject", "all", "--race-inject",
                                "all"}));
    EXPECT_FALSE(parseAndCheck({"--inject", "all", "--sweep", "exact"}));
    EXPECT_FALSE(parseAndCheck({"--inject", "all", "--race", "word"}));
    EXPECT_FALSE(parseAndCheck({"--inject", "all", "--replay", dir}));
    EXPECT_FALSE(
        parseAndCheck({"--race-inject", "all", "--sweep", "model"}));
    EXPECT_FALSE(
        parseAndCheck({"--race-inject", "all", "--race", "line"}));
    EXPECT_FALSE(
        parseAndCheck({"--race-inject", "all", "--replay", dir}));
    // The working-set sweep models cache capacity only.
    EXPECT_FALSE(parseAndCheck({"--interconnect", "bus", "--sweep",
                                "exact"}));
    // A named fault kind must target the configured interconnect.
    EXPECT_FALSE(parseAndCheck({"--inject", "dropped-inval",
                                "--interconnect", "bus"}));
    EXPECT_FALSE(parseAndCheck({"--inject", "double-owner"}));
    // ...while the matching pairings and 'all' stay runnable.
    EXPECT_TRUE(parseAndCheck({"--inject", "all"}));
    EXPECT_TRUE(parseAndCheck({"--inject", "all", "--interconnect",
                               "bus"}));
    EXPECT_TRUE(parseAndCheck({"--inject", "dropped-inval"}));
    EXPECT_TRUE(parseAndCheck({"--inject", "double-owner",
                               "--interconnect", "bus"}));
    EXPECT_TRUE(parseAndCheck({"--race-inject", "all"}));
    EXPECT_TRUE(parseAndCheck({"--interconnect", "bus", "--race",
                               "word"}));
    EXPECT_TRUE(parseAndCheck({"--interconnect", "directory",
                               "--sweep", "exact"}));
}

// All contradictory combinations -- including the two rejected inside
// parseEngineOpts itself -- share one diagnostic shape, so scripts
// can grep a single prefix.
TEST(EngineOpts, ConflictDiagnosticsShareOneShape)
{
    const std::string dir = ::testing::TempDir();
    const std::vector<std::vector<std::string>> combos = {
        {"--inject", "all", "--race", "word"},
        {"--race-inject", "all", "--sweep", "exact"},
        {"--interconnect", "bus", "--sweep", "both"},
        {"--inject", "ghost-exclusive"},
        {"--sweep", "model", "--sweep-threads", "4"},
        {"--record", dir + "cli_conflict_store", "--replay", dir},
    };
    for (const auto& combo : combos) {
        std::string err;
        EXPECT_FALSE(parseAndCheck(combo, &err));
        EXPECT_EQ(err.rfind("conflicting flags: ", 0), 0u)
            << "diagnostic for " << combo[0]
            << " does not share the uniform shape: " << err;
    }
}

// --protocol list is informational: the parse "fails" so the caller
// stops, but listRequested distinguishes exit 0 from a usage error.
TEST(EngineOpts, ProtocolListIsInformationalNotAnError)
{
    EngineOpts eng;
    ::testing::internal::CaptureStdout();
    EXPECT_FALSE(parse({"--protocol", "list"}, &eng));
    std::string zoo = ::testing::internal::GetCapturedStdout();
    EXPECT_TRUE(eng.listRequested);
    for (int k = 0; k < splash::sim::kNumProtocols; ++k)
        EXPECT_NE(zoo.find(splash::sim::protocolName(
                      static_cast<splash::sim::ProtocolKind>(k))),
                  std::string::npos)
            << "zoo listing is missing protocol " << k;
}

// Non-numeric and partially-numeric values must terminate with an
// error (exit 1) instead of truncating ("2x" -> 2) or throwing an
// unhandled std::invalid_argument out of main().
TEST(EngineOptsDeathTest, NumericGarbageIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EngineOpts eng;
    EXPECT_EXIT(parse({"--jobs", "many"}, &eng),
                ::testing::ExitedWithCode(1), "expects an integer");
    EXPECT_EXIT(parse({"--quantum", "2x"}, &eng),
                ::testing::ExitedWithCode(1), "expects an integer");
}

TEST(OptionsDeathTest, NonNumericDoubleIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    std::vector<std::string> full = {"prog", "--scale", "1.5x"};
    std::vector<char*> argv;
    for (auto& s : full)
        argv.push_back(s.data());
    Options opt(static_cast<int>(argv.size()), argv.data());
    EXPECT_EXIT(opt.getD("scale", 1.0), ::testing::ExitedWithCode(1),
                "expects a number");
}
