// Tests for the parallel experiment runner: every job runs exactly
// once in any mode, concurrent simulations stay bit-identical to
// serial ones (the stable simulated address space at work), and job
// exceptions propagate.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "harness/experiment.h"
#include "harness/runner.h"

using namespace splash;
using namespace splash::harness;

TEST(Runner, EveryJobRunsExactlyOnce)
{
    for (int jobs : {1, 2, 4, 7}) {
        Runner r(jobs);
        const int n = 23;
        std::vector<std::atomic<int>> counts(n);
        for (int i = 0; i < n; ++i)
            r.add("job" + std::to_string(i), double(n - i),
                  [&counts, i] { counts[i].fetch_add(1); });
        r.run();
        for (int i = 0; i < n; ++i)
            EXPECT_EQ(counts[i].load(), 1) << "jobs=" << jobs;
    }
}

TEST(Runner, SerialModeRunsInSubmissionOrder)
{
    Runner r(1);
    std::vector<int> order;
    // Costs deliberately inverted: serial mode must ignore them.
    for (int i = 0; i < 8; ++i)
        r.add("j", double(i), [&order, i] { order.push_back(i); });
    r.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Runner, PropagatesFirstJobException)
{
    Runner r(3);
    std::atomic<int> ran{0};
    for (int i = 0; i < 6; ++i)
        r.add("j", 1.0, [&ran, i] {
            ran.fetch_add(1);
            if (i == 2)
                throw std::runtime_error("boom");
        });
    EXPECT_THROW(r.run(), std::runtime_error);
    EXPECT_EQ(ran.load(), 6);  // one failure doesn't cancel the rest
}

TEST(Runner, ResolveMapsZeroToHardwareConcurrency)
{
    EXPECT_EQ(Runner::resolve(3), 3);
    EXPECT_GE(Runner::resolve(0), 1);
}

// The determinism claim behind --jobs: simulations running beside each
// other on worker threads produce exactly the statistics they produce
// alone.  Runs the same PRAM+MemSystem experiment serially and then
// four copies concurrently, and requires equality (not tolerance).
TEST(Runner, ConcurrentSimulationsAreBitIdenticalToSerial)
{
    App* app = findApp("lu");
    ASSERT_NE(app, nullptr);
    AppConfig cfg;
    cfg.scale = 0.25;
    sim::CacheConfig cache;
    cache.size = 64 << 10;

    RunStats alone = runWithMemSystem(*app, 4, cache, cfg);

    const int kCopies = 4;
    std::vector<RunStats> together(kCopies);
    Runner r(kCopies);
    for (int i = 0; i < kCopies; ++i)
        r.add("copy", 1.0, [&, i] {
            together[std::size_t(i)] =
                runWithMemSystem(*app, 4, cache, cfg);
        });
    r.run();

    for (const RunStats& got : together) {
        EXPECT_EQ(alone.elapsed, got.elapsed);
        EXPECT_EQ(alone.exec.reads, got.exec.reads);
        EXPECT_EQ(alone.exec.writes, got.exec.writes);
        EXPECT_EQ(alone.mem.accesses(), got.mem.accesses());
        EXPECT_EQ(alone.mem.totalMisses(), got.mem.totalMisses());
        for (int m = 0; m < sim::kNumMissTypes; ++m)
            EXPECT_EQ(alone.mem.misses[m], got.mem.misses[m]);
        EXPECT_EQ(alone.mem.totalTraffic(), got.mem.totalTraffic());
        EXPECT_EQ(alone.mem.localData, got.mem.localData);
        EXPECT_EQ(alone.mem.trueSharedData, got.mem.trueSharedData);
    }
}
