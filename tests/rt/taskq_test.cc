// Tests for distributed task queues with stealing.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "rt/env.h"
#include "rt/shared.h"
#include "rt/sync.h"
#include "rt/taskq.h"

using namespace splash;
using namespace splash::rt;

TEST(TaskQueues, LocalLifoOrder)
{
    Env env({Mode::Sim, 1});
    TaskQueues tq(env, 1);
    env.run([&](ProcCtx& c) {
        for (std::uint64_t t = 1; t <= 5; ++t)
            tq.push(c, 0, t);
        std::uint64_t out;
        for (std::uint64_t expect = 5; expect >= 1; --expect) {
            ASSERT_TRUE(tq.tryGet(c, 0, out));
            EXPECT_EQ(out, expect);
            tq.done(c);
        }
        EXPECT_FALSE(tq.tryGet(c, 0, out));
    });
}

TEST(TaskQueues, StealingTakesFromVictimHead)
{
    Env env({Mode::Sim, 2});
    TaskQueues tq(env, 2);
    env.run([&](ProcCtx& c) {
        if (c.id() == 0) {
            for (std::uint64_t t = 1; t <= 3; ++t)
                tq.push(c, 0, t);
        }
    });
    env.run([&](ProcCtx& c) {
        if (c.id() == 1) {
            std::uint64_t out;
            ASSERT_TRUE(tq.tryGet(c, 1, out));  // own queue empty: steal
            EXPECT_EQ(out, 1u);                 // FIFO from victim
            tq.done(c);
        }
    });
}

TEST(TaskQueues, AllTasksProcessedExactlyOnceUnderStealing)
{
    const int kProcs = 8;
    const int kTasks = 400;
    Env env({Mode::Sim, kProcs});
    TaskQueues tq(env, kProcs);
    SharedArray<int> hits(env, kTasks);
    // Skewed initial distribution: all tasks on queue 0.
    env.run([&](ProcCtx& c) {
        if (c.id() == 0) {
            for (int t = 0; t < kTasks; ++t)
                tq.push(c, 0, static_cast<std::uint64_t>(t));
        }
    });
    env.run([&](ProcCtx& c) {
        std::uint64_t t;
        while (tq.get(c, c.id(), t)) {
            hits[t] += 1;
            c.work(50);
            tq.done(c);
        }
    });
    for (int t = 0; t < kTasks; ++t)
        EXPECT_EQ(hits.raw()[t], 1) << "task " << t;
}

TEST(TaskQueues, DynamicSpawningTerminates)
{
    // Each task with value v > 0 spawns two tasks of value v-1;
    // starting from one task of value 4 we must process 2^5 - 1 = 31.
    Env env({Mode::Sim, 4});
    TaskQueues tq(env, 4);
    SharedVar<long> processed(env, 0);
    Lock lock(env);
    env.run([&](ProcCtx& c) {
        if (c.id() == 0)
            tq.push(c, 0, 4);
    });
    env.run([&](ProcCtx& c) {
        std::uint64_t v;
        while (tq.get(c, c.id(), v)) {
            if (v > 0) {
                tq.push(c, c.id(), v - 1);
                tq.push(c, c.id(), v - 1);
            }
            {
                Lock::Guard g(lock, c);
                *processed += 1;
            }
            tq.done(c);
        }
    });
    EXPECT_EQ(processed.get(), 31);
}

TEST(TaskQueues, NativeModeStealingWorks)
{
    const int kProcs = 4;
    const int kTasks = 200;
    Env env({Mode::Native, kProcs});
    TaskQueues tq(env, kProcs);
    SharedArray<int> hits(env, kTasks);
    env.run([&](ProcCtx& c) {
        if (c.id() == 0) {
            for (int t = 0; t < kTasks; ++t)
                tq.push(c, 0, static_cast<std::uint64_t>(t));
        }
        std::uint64_t t;
        while (tq.get(c, c.id(), t)) {
            hits[t] += 1;  // tasks are distinct: no data race per slot
            tq.done(c);
        }
    });
    int total = 0;
    for (int t = 0; t < kTasks; ++t)
        total += hits.raw()[t];
    EXPECT_EQ(total, kTasks);
}
