// Shared helpers for differential tests that prove two simulation
// mechanisms (execution backends, reference-delivery shapes, sweep
// replay modes) produce bit-identical characterizations.
#ifndef SPLASH2_TESTS_RT_RUN_COMPARE_H
#define SPLASH2_TESTS_RT_RUN_COMPARE_H

#include <gtest/gtest.h>

#include <string>

#include "harness/app.h"
#include "harness/experiment.h"

namespace splash::testing {

/** Full characterization of one app under @p simOpts: 8 processors,
 *  default 1 MB caches, problem size @p n. */
inline harness::RunStats
characterize(const std::string& name, long n,
             const harness::SimOpts& simOpts)
{
    harness::App* app = harness::findApp(name);
    EXPECT_NE(app, nullptr) << name;
    harness::AppConfig cfg;
    cfg.n = n;
    sim::CacheConfig cache;
    return harness::runWithMemSystem(*app, 8, cache, cfg, simOpts);
}

inline void
expectSameProcStats(const rt::ProcStats& a, const rt::ProcStats& b,
                    int p)
{
    EXPECT_EQ(a.reads, b.reads) << "P" << p;
    EXPECT_EQ(a.writes, b.writes) << "P" << p;
    EXPECT_EQ(a.flops, b.flops) << "P" << p;
    EXPECT_EQ(a.work, b.work) << "P" << p;
    EXPECT_EQ(a.barriers, b.barriers) << "P" << p;
    EXPECT_EQ(a.locks, b.locks) << "P" << p;
    EXPECT_EQ(a.pauses, b.pauses) << "P" << p;
    EXPECT_EQ(a.barrierWait, b.barrierWait) << "P" << p;
    EXPECT_EQ(a.lockWait, b.lockWait) << "P" << p;
    EXPECT_EQ(a.pauseWait, b.pauseWait) << "P" << p;
    EXPECT_EQ(a.startTime, b.startTime) << "P" << p;
    EXPECT_EQ(a.finishTime, b.finishTime) << "P" << p;
}

inline void
expectSameMemStats(const sim::MemStats& a, const sim::MemStats& b,
                   int p)
{
    EXPECT_EQ(a.reads, b.reads) << "P" << p;
    EXPECT_EQ(a.writes, b.writes) << "P" << p;
    for (int m = 0; m < sim::kNumMissTypes; ++m)
        EXPECT_EQ(a.misses[m], b.misses[m]) << "P" << p << " type " << m;
    EXPECT_EQ(a.upgrades, b.upgrades) << "P" << p;
    EXPECT_EQ(a.remoteSharedData, b.remoteSharedData) << "P" << p;
    EXPECT_EQ(a.remoteColdData, b.remoteColdData) << "P" << p;
    EXPECT_EQ(a.remoteCapacityData, b.remoteCapacityData) << "P" << p;
    EXPECT_EQ(a.remoteWriteback, b.remoteWriteback) << "P" << p;
    EXPECT_EQ(a.remoteOverhead, b.remoteOverhead) << "P" << p;
    EXPECT_EQ(a.localData, b.localData) << "P" << p;
    EXPECT_EQ(a.trueSharedData, b.trueSharedData) << "P" << p;
}

inline void
expectSameRun(const harness::RunStats& a, const harness::RunStats& b)
{
    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.elapsed, b.elapsed);
    ASSERT_EQ(a.perProc.size(), b.perProc.size());
    for (std::size_t p = 0; p < a.perProc.size(); ++p)
        expectSameProcStats(a.perProc[p], b.perProc[p], int(p));
    ASSERT_EQ(a.memPerProc.size(), b.memPerProc.size());
    for (std::size_t p = 0; p < a.memPerProc.size(); ++p)
        expectSameMemStats(a.memPerProc[p], b.memPerProc[p], int(p));
}

} // namespace splash::testing

#endif // SPLASH2_TESTS_RT_RUN_COMPARE_H
