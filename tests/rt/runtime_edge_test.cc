// Edge-case tests for runtime primitives: flag reuse, subset barriers,
// lock fairness, idle accounting, and scheduler stress patterns.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "rt/env.h"
#include "rt/shared.h"
#include "rt/sync.h"

using namespace splash;
using namespace splash::rt;

TEST(FlagEdge, ClearAndReuseAcrossPhases)
{
    Env env({Mode::Sim, 3});
    Flag flag(env);
    Barrier bar(env);
    SharedArray<int> seen(env, 3);
    env.run([&](ProcCtx& c) {
        for (int phase = 0; phase < 5; ++phase) {
            if (c.id() == 0) {
                seen[phase % 3] = phase;
                flag.set(c);
            } else {
                flag.wait(c);
                EXPECT_EQ(int(seen[phase % 3]), phase);
            }
            bar.arrive(c);
            if (c.id() == 0)
                flag.clear(c);
            bar.arrive(c);
        }
    });
    EXPECT_EQ(env.stats(1).pauses, 5u);
}

TEST(BarrierEdge, SubsetBarrierOnlyBlocksParticipants)
{
    Env env({Mode::Sim, 4});
    Barrier half(env, 2);  // only procs 0 and 1 participate
    Barrier all(env);
    SharedVar<int> done(env, 0);
    Lock lock(env);
    env.run([&](ProcCtx& c) {
        if (c.id() < 2) {
            half.arrive(c);
        } else {
            Lock::Guard g(lock, c);
            *done += 1;
        }
        all.arrive(c);
    });
    EXPECT_EQ(done.get(), 2);
}

TEST(LockEdge, ContendedHandoffIsDeterministicAndExclusive)
{
    // Queue order under contention is scheduler-defined, but it must
    // be (a) a permutation (everyone gets the lock exactly once) and
    // (b) bit-identical across runs.
    auto once = [] {
        Env env({Mode::Sim, 4});
        Lock lock(env);
        Barrier bar(env);
        SharedArray<int> order(env, 4);
        SharedVar<int> next(env, 0);
        env.run([&](ProcCtx& c) {
            if (c.id() == 0) {
                lock.acquire(c);
                bar.arrive(c);
                c.work(1000);  // others queue meanwhile
                lock.release(c);
            } else {
                bar.arrive(c);
                c.work(10 * c.id());
                lock.acquire(c);
                int slot = next.get();
                order[slot] = c.id();
                next.set(slot + 1);
                lock.release(c);
            }
        });
        return std::vector<int>{order.raw()[0], order.raw()[1],
                                order.raw()[2]};
    };
    auto a = once();
    auto sorted = a;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(once(), a);  // deterministic handoff
}

TEST(IdleAccounting, IdleChargesPauseWaitNotInstructions)
{
    Env env({Mode::Sim, 1});
    env.run([&](ProcCtx& c) {
        c.work(100);
        c.idle(400);
    });
    EXPECT_EQ(env.stats(0).work, 100u);
    EXPECT_EQ(env.stats(0).pauseWait, 400u);
    EXPECT_EQ(env.elapsed(), 500u);  // idle advances logical time
}

TEST(SchedulerStress, ChainedProducerConsumer)
{
    // A pipeline of flags: P0 -> P1 -> ... -> P7; each stage waits for
    // its predecessor. Exercises repeated block/unblock chains.
    const int kProcs = 8;
    Env env({Mode::Sim, kProcs});
    std::vector<std::unique_ptr<Flag>> flags;
    for (int i = 0; i < kProcs; ++i)
        flags.push_back(std::make_unique<Flag>(env));
    SharedArray<int> value(env, kProcs);
    env.run([&](ProcCtx& c) {
        int id = c.id();
        if (id == 0) {
            value[0] = 1;
            flags[0]->set(c);
        } else {
            flags[id - 1]->wait(c);
            value[id] = int(value[id - 1]) + 1;
            flags[id]->set(c);
        }
    });
    EXPECT_EQ(int(value[kProcs - 1]), kProcs);
    // Logical clocks propagate along the chain monotonically.
    for (int i = 1; i < kProcs; ++i)
        EXPECT_GE(env.stats(i).finishTime, env.stats(i - 1).finishTime);
}

TEST(SharedHeapEdge, AdjacentAllocationsNeverShareLines)
{
    Env env({Mode::Sim, 2});
    SharedArray<char> a(env, 3);
    SharedArray<char> b(env, 3);
    Addr la = reinterpret_cast<Addr>(a.raw()) / 64;
    Addr lb = reinterpret_cast<Addr>(b.raw()) / 64;
    EXPECT_NE(la, lb);
}

TEST(EnvEdge, RunTwiceAccumulatesClocks)
{
    Env env({Mode::Sim, 2});
    env.run([&](ProcCtx& c) { c.work(100); });
    env.run([&](ProcCtx& c) { c.work(50); });
    EXPECT_EQ(env.stats(0).finishTime, 150u);
    // startMeasurement resets the window but not the clocks.
    env.startMeasurement();
    env.run([&](ProcCtx& c) { c.work(25); });
    EXPECT_EQ(env.elapsed(), 25u);
    EXPECT_EQ(env.stats(0).finishTime, 175u);
}

TEST(SchedulerEdge, UnblockOfDoneProcessorIsNoOp)
{
    // P0 exits immediately; P1 later "unblocks" it.  The unblock must
    // not resurrect a finished processor (which would make the
    // scheduler switch into a dead context).
    Scheduler s(2);
    std::vector<int> bodyRuns(2, 0);
    s.run([&](ProcId p) {
        ++bodyRuns[p];
        if (p == 1) {
            s.advance(p, 1);
            s.yield(p);  // P0 is long done by now
            s.unblock(0);
            s.advance(p, 1);
            s.yield(p);  // must keep running P1, not P0
        }
    });
    EXPECT_EQ(bodyRuns[0], 1);
    EXPECT_EQ(bodyRuns[1], 1);
    EXPECT_EQ(s.time(1), 2u);
}

TEST(SchedulerEdge, DeadlockReportShowsStatusAndClock)
{
    // The deadlock diagnostic must name each processor's status, what
    // it is blocked on, and its logical time.
    EXPECT_DEATH(
        {
            Env env({Mode::Sim, 2});
            Flag f(env);
            env.run([&](ProcCtx& c) {
                c.work(3 + c.id());
                f.wait(c);
            });
        },
        "deadlock: no runnable processor");
    EXPECT_DEATH(
        {
            Env env({Mode::Sim, 2});
            Flag f(env);
            env.run([&](ProcCtx& c) {
                c.work(3 + c.id());
                f.wait(c);
            });
        },
        "P1: Blocked\\(flag\\) @t=4");
}

TEST(EnvEdge, NestedTeamOnSeparateEnvRunsInsideABody)
{
    // A team body may create and run a second, independent Env (e.g.
    // an app solving a subproblem with its own simulated machine).
    // The inner episode's instrumentation must charge the inner Env
    // and the outer context must be restored afterwards.
    Env outer({Mode::Sim, 2});
    long innerSum = 0;
    Tick innerElapsed = 0;
    outer.run([&](ProcCtx& c) {
        c.work(10);
        if (c.id() == 0) {
            Env inner({Mode::Sim, 3, 100});
            SharedArray<int> acc(inner, 3);
            inner.run([&](ProcCtx& ic) {
                ic.work(5);
                acc[ic.id()] = ic.id() + 1;
            });
            for (int i = 0; i < 3; ++i)
                innerSum += acc.raw()[i];
            innerElapsed = inner.elapsed();
            EXPECT_EQ(inner.stats(0).work, 5u);
        }
        c.work(10);  // instrumentation resolves to the outer ctx again
    });
    EXPECT_EQ(innerSum, 6);
    EXPECT_GE(innerElapsed, 5u);
    EXPECT_EQ(outer.stats(0).work, 20u);  // inner work not charged here
    EXPECT_EQ(outer.stats(1).work, 20u);
}

TEST(EnvEdge, NestedRunOnSameEnvPanics)
{
    EXPECT_DEATH(
        {
            Env env({Mode::Sim, 2});
            env.run([&](ProcCtx& c) {
                if (c.id() == 0)
                    env.run([](ProcCtx&) {});
            });
        },
        "already running");
}

class QuantumSweep : public ::testing::TestWithParam<int>
{};

TEST_P(QuantumSweep, ResultsIndependentOfQuantum)
{
    // The scheduler quantum is a performance knob; deterministic
    // programs must compute identical results at any quantum.
    auto run = [&](std::uint64_t quantum) {
        EnvConfig ec{Mode::Sim, 4, quantum};
        Env env(ec);
        SharedArray<long> acc(env, 4);
        Barrier bar(env);
        env.run([&](ProcCtx& c) {
            for (int i = 0; i < 500; ++i)
                acc[c.id()] += i ^ c.id();
            bar.arrive(c);
        });
        long total = 0;
        for (int i = 0; i < 4; ++i)
            total += acc.raw()[i];
        return total;
    };
    EXPECT_EQ(run(GetParam()), run(250));
}

INSTANTIATE_TEST_SUITE_P(Quanta, QuantumSweep,
                         ::testing::Values(1, 7, 100, 5000));
