// Tests for the shared heap, placement, and instrumented containers.
#include <gtest/gtest.h>

#include "rt/env.h"
#include "rt/shared.h"
#include "sim/memsys.h"

using namespace splash;
using namespace splash::rt;

TEST(SharedHeap, AllocationsAreLineAlignedAndZeroed)
{
    SharedHeap heap(4);
    for (int i = 0; i < 10; ++i) {
        char* p = static_cast<char*>(heap.alloc(100 + i));
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u);
        for (int j = 0; j < 100 + i; ++j)
            EXPECT_EQ(p[j], 0);
    }
}

TEST(SharedHeap, ExplicitPlacementWins)
{
    // homeOf operates on simulated addresses (see toSim).
    SharedHeap heap(4);
    char* a = static_cast<char*>(heap.alloc(4096));
    heap.setHome(a, 2048, 3);
    heap.setHome(a + 2048, 2048, 1);
    Addr s = heap.toSim(reinterpret_cast<Addr>(a));
    EXPECT_EQ(heap.homeOf(s), 3);
    EXPECT_EQ(heap.homeOf(s + 2047), 3);
    EXPECT_EQ(heap.homeOf(s + 2048), 1);
    EXPECT_EQ(heap.homeOf(s + 4095), 1);
}

TEST(SharedHeap, UnplacedDataInterleavesAcrossNodes)
{
    SharedHeap heap(4);
    char* a = static_cast<char*>(heap.alloc(64 * 16));
    Addr base = heap.toSim(reinterpret_cast<Addr>(a));
    int seen[4] = {0, 0, 0, 0};
    for (int i = 0; i < 16; ++i)
        ++seen[heap.homeOf(base + Addr(i) * 64)];
    for (int n = 0; n < 4; ++n)
        EXPECT_EQ(seen[n], 4);
}

TEST(SharedHeap, LargeAllocationsSpanBlocks)
{
    SharedHeap heap(2);
    void* big = heap.alloc(40u << 20);  // larger than one arena block
    ASSERT_NE(big, nullptr);
    void* more = heap.alloc(1024);
    ASSERT_NE(more, nullptr);
    EXPECT_GE(heap.bytesAllocated(), (40u << 20) + 1024u);
}

TEST(SharedHeap, SimulatedAddressesAreStableAcrossHeaps)
{
    // Two heaps performing the same allocation sequence hand out the
    // same *simulated* addresses even though the host arenas differ --
    // the property that makes concurrent experiments bit-identical to
    // serial ones.
    SharedHeap h1(4), h2(4);
    for (std::size_t bytes : {100u, 4096u, 64u, 333u, 128u}) {
        Addr s1 = h1.toSim(reinterpret_cast<Addr>(h1.alloc(bytes)));
        Addr s2 = h2.toSim(reinterpret_cast<Addr>(h2.alloc(bytes)));
        EXPECT_EQ(s1, s2) << bytes;
        EXPECT_GE(s1, SharedHeap::kSimBase);
    }
    // Addresses outside the arena pass through untranslated.
    int local = 0;
    EXPECT_EQ(h1.toSim(reinterpret_cast<Addr>(&local)),
              reinterpret_cast<Addr>(&local));
}

TEST(SharedArray, ProxyReadsAndWritesAreCounted)
{
    Env env({Mode::Sim, 2});
    SharedArray<double> a(env, 64);
    env.run([&](ProcCtx& c) {
        if (c.id() == 0) {
            for (int i = 0; i < 64; ++i)
                a[i] = i * 1.5;
        } else {
            // Nothing; P1 idles.
        }
    });
    EXPECT_EQ(env.stats(0).writes, 64u);
    env.run([&](ProcCtx& c) {
        if (c.id() == 1) {
            double s = 0;
            for (int i = 0; i < 64; ++i)
                s += a[i];
            EXPECT_DOUBLE_EQ(s, 1.5 * (63.0 * 64.0 / 2.0));
        }
    });
    EXPECT_EQ(env.stats(1).reads, 64u);
}

TEST(SharedArray, CompoundAssignmentCountsReadAndWrite)
{
    Env env({Mode::Sim, 1});
    SharedArray<int> a(env, 4);
    env.run([&](ProcCtx& c) {
        a[0] = 5;
        a[0] += 3;
        (void)c;
    });
    EXPECT_EQ(*a.raw(), 8);
    EXPECT_EQ(env.stats(0).writes, 2u);
    EXPECT_EQ(env.stats(0).reads, 1u);
}

namespace {
struct Body
{
    double pos[3];
    double mass;
};
} // namespace

TEST(SharedArray, FieldAccessReferencesOnlyMemberBytes)
{
    Env env({Mode::Sim, 2});
    sim::MachineConfig mc;
    mc.nprocs = 2;
    sim::MemSystem mem(mc, &env.heap());
    env.attachMemSystem(&mem);

    SharedArray<Body> bodies(env, 8);
    env.run([&](ProcCtx& c) {
        if (c.id() == 1)
            (void)bodies.ldf(0, &Body::mass);  // warm P1's cache (cold)
    });
    env.run([&](ProcCtx& c) {
        if (c.id() == 0)
            bodies.stf(0, &Body::mass, 2.5);  // invalidates P1
    });
    env.run([&](ProcCtx& c) {
        if (c.id() == 1) {
            EXPECT_DOUBLE_EQ(bodies.ldf(0, &Body::mass), 2.5);
        }
    });
    // P1's re-read is a true-sharing miss: it read the written word.
    EXPECT_EQ(mem.procStats(1).misses[int(sim::MissType::TrueSharing)], 1u);
}

TEST(SharedArray, SetupAccessesAreNotInstrumented)
{
    Env env({Mode::Sim, 1});
    SharedArray<int> a(env, 16);
    for (int i = 0; i < 16; ++i)
        a[i] = i;  // outside any team: cur() == nullptr
    EXPECT_EQ(env.stats(0).writes, 0u);
    EXPECT_EQ(a.ld(3), 3);
}

TEST(SharedVar, BehavesAsSingleElement)
{
    Env env({Mode::Native, 2});
    SharedVar<long> v(env, 7);
    EXPECT_EQ(v.get(), 7);
    v.set(9);
    EXPECT_EQ(*v.raw(), 9);
}
