// Differential and determinism tests for the execution backends.
//
// The ExecutionBackend seam is pure mechanism: the fiber and thread
// backends must produce bit-identical interleavings, and therefore
// bit-identical execution and memory-system statistics, for any
// deterministic program.  These tests enforce that equivalence at two
// levels: raw scheduler traces, and full application characterizations
// (ProcStats + MemStats per processor) for FFT and LU at 8 processors.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "harness/app.h"
#include "harness/experiment.h"
#include "rt/exec_backend.h"
#include "rt/scheduler.h"
#include "run_compare.h"

using namespace splash;
using namespace splash::rt;
using namespace splash::harness;
using splash::testing::expectSameRun;

namespace {

/** Full characterization of one app run under @p kind: small problem,
 *  8 processors, default 1 MB caches. */
RunStats
characterize(const std::string& name, BackendKind kind, long n,
             std::uint64_t quantum = 250)
{
    SimOpts sim;
    sim.quantum = quantum;
    sim.backend = kind;
    return splash::testing::characterize(name, n, sim);
}

/** Scheduler-level event trace: the exact sequence of (proc, clock)
 *  control transfers under a mix of yields, blocks and unblocks. */
std::vector<std::uint64_t>
schedulerTrace(BackendKind kind)
{
    Scheduler s(6, /*quantum=*/5, kind);
    std::vector<std::uint64_t> trace;
    s.run([&](ProcId p) {
        for (int i = 0; i < 100; ++i) {
            trace.push_back(std::uint64_t(p) << 32 |
                            (s.time(p) & 0xFFFFFFFF));
            s.advance(p, 1 + (p % 3));
            if (i % 17 == p) {
                s.unblock((p + 1) % 6);
                s.yield(p);
            } else if (i % 23 == p && p > 0) {
                s.unblock(p - 1);
                s.advance(p, 7);
            }
            s.event(p);
        }
    });
    return trace;
}

} // namespace

TEST(BackendDifferential, SchedulerTraceIdenticalAcrossBackends)
{
    auto fiber = schedulerTrace(BackendKind::Fiber);
    auto thread = schedulerTrace(BackendKind::Thread);
    EXPECT_EQ(fiber, thread);
    EXPECT_EQ(fiber, schedulerTrace(BackendKind::Fiber));
}

TEST(BackendDifferential, FftStatsIdenticalAcrossBackends)
{
    // log2n = 12 -> 4096 points on 8 processors.
    auto fiber = characterize("fft", BackendKind::Fiber, 12);
    auto thread = characterize("fft", BackendKind::Thread, 12);
    ASSERT_TRUE(fiber.valid);
    expectSameRun(fiber, thread);
}

TEST(BackendDifferential, LuStatsIdenticalAcrossBackends)
{
    // 128x128 matrix on 8 processors.
    auto fiber = characterize("lu", BackendKind::Fiber, 128);
    auto thread = characterize("lu", BackendKind::Thread, 128);
    ASSERT_TRUE(fiber.valid);
    expectSameRun(fiber, thread);
}

TEST(BackendDifferential, QuantumOneStressIdenticalAcrossBackends)
{
    // Quantum 1 maximizes context switches -- the harshest test of the
    // backend handoff path.
    auto fiber = characterize("fft", BackendKind::Fiber, 10, 1);
    auto thread = characterize("fft", BackendKind::Thread, 10, 1);
    expectSameRun(fiber, thread);
}

TEST(Determinism, RepeatedFiberRunsAreBitIdentical)
{
    auto a = characterize("fft", BackendKind::Fiber, 12);
    auto b = characterize("fft", BackendKind::Fiber, 12);
    expectSameRun(a, b);
}

TEST(Determinism, RepeatedThreadRunsAreBitIdentical)
{
    auto a = characterize("fft", BackendKind::Thread, 12);
    auto b = characterize("fft", BackendKind::Thread, 12);
    expectSameRun(a, b);
}

TEST(Backend, PingPongBlockUnblockCompletes)
{
    // The pattern the context-switch microbenchmark uses; assert its
    // correctness here so the bench can trust it.
    for (BackendKind kind :
         {BackendKind::Fiber, BackendKind::Thread}) {
        Scheduler s(2, 250, kind);
        const int rounds = 1000;
        int switches = 0;
        s.run([&](ProcId p) {
            ProcId other = 1 - p;
            for (int i = 0; i < rounds; ++i) {
                s.advance(p, 1);
                s.unblock(other);
                s.block(p, "ping-pong");
                ++switches;
            }
            s.unblock(other);
        });
        EXPECT_EQ(switches, 2 * rounds) << backendName(kind);
        EXPECT_EQ(s.time(0), Tick(rounds));
        EXPECT_EQ(s.time(1), Tick(rounds));
    }
}

TEST(Backend, NamesRoundTrip)
{
    BackendKind k = BackendKind::Thread;
    EXPECT_TRUE(parseBackendKind("fiber", &k));
    EXPECT_EQ(k, BackendKind::Fiber);
    EXPECT_TRUE(parseBackendKind("thread", &k));
    EXPECT_EQ(k, BackendKind::Thread);
    EXPECT_FALSE(parseBackendKind("pthread", &k));
    EXPECT_STREQ(backendName(BackendKind::Fiber), "fiber");
    EXPECT_STREQ(backendName(BackendKind::Thread), "thread");
}
