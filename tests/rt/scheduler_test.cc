// Tests for the deterministic cooperative scheduler.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rt/scheduler.h"

using namespace splash;
using namespace splash::rt;

TEST(Scheduler, RunsEveryProcessorToCompletion)
{
    Scheduler s(8);
    std::vector<int> ran(8, 0);
    s.run([&](ProcId p) { ran[p] = 1; });
    for (int p = 0; p < 8; ++p)
        EXPECT_EQ(ran[p], 1);
}

TEST(Scheduler, OnlyOneProcessorRunsAtATime)
{
    Scheduler s(4, /*quantum=*/10);
    int inside = 0;
    bool overlap = false;
    s.run([&](ProcId p) {
        for (int i = 0; i < 1000; ++i) {
            ++inside;
            if (inside != 1)
                overlap = true;
            --inside;
            s.advance(p, 1);
            s.event(p);
        }
    });
    EXPECT_FALSE(overlap);
}

TEST(Scheduler, SchedulesSmallestLogicalTimeFirst)
{
    // P1 accrues time 10x faster; the interleaving must keep clocks
    // within ~quantum * rate of each other, so P0 gets scheduled far
    // more often per unit of its own progress.
    // Both processors accrue 2000 total ticks so neither outlives the
    // other; P1 in coarse steps, P0 in fine steps.
    Scheduler s(2, 5);
    Tick max_skew = 0;
    s.run([&](ProcId p) {
        std::uint64_t step = p == 1 ? 10 : 1;
        int iters = p == 1 ? 200 : 2000;
        for (int i = 0; i < iters; ++i) {
            s.advance(p, step);
            Tick a = s.time(0), b = s.time(1);
            Tick skew = a > b ? a - b : b - a;
            max_skew = std::max(max_skew, skew);
            s.event(p);
        }
    });
    // Skew is bounded by one quantum of the fast processor.
    EXPECT_LE(max_skew, 5u * 10u + 10u);
}

TEST(Scheduler, DeterministicInterleaving)
{
    auto trace = [] {
        Scheduler s(4, 7);
        std::vector<int> order;
        s.run([&](ProcId p) {
            for (int i = 0; i < 200; ++i) {
                order.push_back(p);
                s.advance(p, 1 + p);  // heterogeneous rates
                s.event(p);
            }
        });
        return order;
    };
    EXPECT_EQ(trace(), trace());
}

TEST(Scheduler, BlockAndUnblock)
{
    Scheduler s(2);
    std::vector<int> order;
    s.run([&](ProcId p) {
        if (p == 0) {
            s.advance(p, 1);  // ensure P0 runs first (tie-break by id)
            order.push_back(0);
            s.block(0);       // wait for P1
            order.push_back(2);
        } else {
            s.advance(p, 10);
            order.push_back(1);
            s.unblock(0);
        }
    });
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 2);
}

TEST(Scheduler, DeadlockIsDetected)
{
    EXPECT_DEATH(
        {
            Scheduler s(2);
            s.run([&](ProcId p) { s.block(p); });
        },
        "deadlock");
}

TEST(Scheduler, ClocksPersistAcrossRuns)
{
    Scheduler s(2);
    s.run([&](ProcId p) { s.advance(p, 100); });
    EXPECT_EQ(s.time(0), 100u);
    s.run([&](ProcId p) { s.advance(p, 50); });
    EXPECT_EQ(s.time(0), 150u);
    EXPECT_EQ(s.time(1), 150u);
}

class SchedulerBackends
    : public ::testing::TestWithParam<rt::BackendKind>
{};

TEST_P(SchedulerBackends, InterleavingIsBackendInvariant)
{
    // The backend is pure mechanism; the interleaving (and thus every
    // downstream statistic) must be identical under both.
    auto trace = [](rt::BackendKind kind) {
        Scheduler s(4, 7, kind);
        std::vector<int> order;
        s.run([&](ProcId p) {
            for (int i = 0; i < 200; ++i) {
                order.push_back(p);
                s.advance(p, 1 + p);
                s.event(p);
            }
        });
        return order;
    };
    EXPECT_EQ(trace(GetParam()), trace(rt::BackendKind::Fiber));
}

TEST_P(SchedulerBackends, BlockAndUnblock)
{
    Scheduler s(2, 250, GetParam());
    std::vector<int> order;
    s.run([&](ProcId p) {
        if (p == 0) {
            s.advance(p, 1);
            order.push_back(0);
            s.block(0, "test");
            order.push_back(2);
        } else {
            s.advance(p, 10);
            order.push_back(1);
            s.unblock(0);
        }
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

INSTANTIATE_TEST_SUITE_P(
    Backends, SchedulerBackends,
    ::testing::Values(rt::BackendKind::Fiber, rt::BackendKind::Thread),
    [](const ::testing::TestParamInfo<rt::BackendKind>& info) {
        return std::string(rt::backendName(info.param));
    });

TEST(Scheduler, ManyProcessors)
{
    Scheduler s(64, 3);
    std::uint64_t total = 0;
    s.run([&](ProcId p) {
        for (int i = 0; i < 100; ++i) {
            ++total;  // safe: baton guarantees mutual exclusion
            s.advance(p, 1);
            s.event(p);
        }
    });
    EXPECT_EQ(total, 6400u);
}
