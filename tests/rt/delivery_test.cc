// Differential tests for the reference-delivery seam.
//
// The runtime can hand references to the simulator one call at a time
// (direct) or append them to a ring buffer drained at every control
// transfer (batched).  Because exactly one simulated processor runs at
// a time and the ring is drained before every switch, the drained
// order equals the execution order -- so the two shapes must produce
// bit-identical characterizations.  These tests enforce that on full
// FFT/LU/Ocean runs at 8 processors, including the multi-threaded
// sweep replay pipeline that rides on batched delivery.
#include <gtest/gtest.h>

#include <string>

#include "harness/app.h"
#include "harness/experiment.h"
#include "run_compare.h"

using namespace splash;
using namespace splash::harness;
using splash::testing::characterize;
using splash::testing::expectSameRun;

namespace {

SimOpts
withDelivery(rt::Delivery d, std::uint64_t quantum = 250)
{
    SimOpts sim;
    sim.quantum = quantum;
    sim.delivery = d;
    return sim;
}

void
expectDeliveryIdentical(const std::string& app, long n)
{
    auto direct =
        characterize(app, n, withDelivery(rt::Delivery::Direct));
    auto batched =
        characterize(app, n, withDelivery(rt::Delivery::Batched));
    ASSERT_TRUE(direct.valid) << app;
    expectSameRun(direct, batched);
}

} // namespace

TEST(DeliveryDifferential, FftStatsIdentical)
{
    // log2n = 12 -> 4096 points on 8 processors.
    expectDeliveryIdentical("fft", 12);
}

TEST(DeliveryDifferential, LuStatsIdentical)
{
    // 128x128 matrix on 8 processors.
    expectDeliveryIdentical("lu", 128);
}

TEST(DeliveryDifferential, OceanStatsIdentical)
{
    // 32x32 grid on 8 processors.
    expectDeliveryIdentical("ocean", 32);
}

TEST(DeliveryDifferential, QuantumOneStressIdentical)
{
    // Quantum 1 forces a drain after every instrumentation event --
    // the ring never holds more than one record, the harshest test of
    // the drain-at-switch protocol.
    auto direct =
        characterize("fft", 10, withDelivery(rt::Delivery::Direct, 1));
    auto batched =
        characterize("fft", 10, withDelivery(rt::Delivery::Batched, 1));
    expectSameRun(direct, batched);
}

TEST(DeliveryDifferential, NamesRoundTrip)
{
    rt::Delivery d = rt::Delivery::Direct;
    EXPECT_TRUE(rt::parseDelivery("batched", &d));
    EXPECT_EQ(d, rt::Delivery::Batched);
    EXPECT_TRUE(rt::parseDelivery("direct", &d));
    EXPECT_EQ(d, rt::Delivery::Direct);
    EXPECT_FALSE(rt::parseDelivery("eager", &d));
    EXPECT_STREQ(rt::deliveryName(rt::Delivery::Batched), "batched");
    EXPECT_STREQ(rt::deliveryName(rt::Delivery::Direct), "direct");
}

namespace {

/** Run the working-set sweep for @p app at 8 processors under the
 *  given delivery shape and sweep worker count. */
sim::CacheSweep
sweepRun(const std::string& name, long n, rt::Delivery delivery,
         int sweepThreads)
{
    App* app = findApp(name);
    EXPECT_NE(app, nullptr) << name;
    AppConfig cfg;
    cfg.n = n;
    sim::SweepConfig sc;
    sc.nprocs = 8;
    sim::CacheSweep sweep(sc);
    SimOpts simOpts;
    simOpts.delivery = delivery;
    simOpts.sweepThreads = sweepThreads;
    runWithSweep(*app, 8, sweep, cfg, simOpts);
    return sweep;
}

void
expectSameSweep(const sim::CacheSweep& a, const sim::CacheSweep& b)
{
    EXPECT_EQ(a.accesses(), b.accesses());
    const sim::SweepConfig& sc = a.config();
    for (std::uint64_t size : sc.sizes) {
        for (int assoc : {1, 2, 4, 0}) {
            EXPECT_EQ(a.misses(size, assoc), b.misses(size, assoc))
                << size << "B " << assoc << "-way";
            EXPECT_EQ(a.missRate(size, assoc), b.missRate(size, assoc))
                << size << "B " << assoc << "-way";
        }
    }
}

} // namespace

TEST(SweepDifferential, ParallelReplayIdenticalToSerialOnline)
{
    // The acceptance pairing: classic direct delivery + serial online
    // sweep versus batched delivery + multi-threaded capture/replay.
    auto serial = sweepRun("fft", 12, rt::Delivery::Direct, 1);
    auto parallel = sweepRun("fft", 12, rt::Delivery::Batched, 3);
    expectSameSweep(serial, parallel);
}

TEST(SweepDifferential, WorkerCountInvariant)
{
    auto one = sweepRun("lu", 64, rt::Delivery::Batched, 1);
    for (int threads : {2, 5}) {
        auto many = sweepRun("lu", 64, rt::Delivery::Batched, threads);
        expectSameSweep(one, many);
    }
}
