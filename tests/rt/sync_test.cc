// Tests for barriers, locks, and flags in both execution modes,
// including the PRAM logical-time semantics used for Figures 1 and 2.
#include <gtest/gtest.h>

#include <vector>

#include "rt/env.h"
#include "rt/shared.h"
#include "rt/sync.h"

using namespace splash;
using namespace splash::rt;

namespace {

EnvConfig
simCfg(int nprocs)
{
    return {Mode::Sim, nprocs, 250};
}

} // namespace

TEST(Barrier, NativeRendezvous)
{
    Env env({Mode::Native, 8});
    Barrier bar(env);
    SharedArray<int> phase(env, 8);
    env.run([&](ProcCtx& c) {
        phase.raw()[c.id()] = 1;
        bar.arrive(c);
        // After the barrier every processor must observe all writes.
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(phase.raw()[i], 1);
        bar.arrive(c);
    });
}

TEST(Barrier, SimAlignsLogicalClocksToMaxArrival)
{
    Env env(simCfg(4));
    Barrier bar(env);
    env.run([&](ProcCtx& c) {
        c.work(100 * (c.id() + 1));  // arrival times 100..400
        bar.arrive(c);
        EXPECT_EQ(env.scheduler()->time(c.id()), 400u);
    });
    // Wait charged: 300, 200, 100, 0.
    EXPECT_EQ(env.stats(0).barrierWait, 300u);
    EXPECT_EQ(env.stats(3).barrierWait, 0u);
    for (int p = 0; p < 4; ++p)
        EXPECT_EQ(env.stats(p).barriers, 1u);
}

TEST(Barrier, SimRepeatedPhases)
{
    Env env(simCfg(4));
    Barrier bar(env);
    SharedArray<int> counter(env, 1);
    env.run([&](ProcCtx& c) {
        for (int it = 0; it < 10; ++it) {
            c.work(c.id() + 1);
            bar.arrive(c);
            // All clocks equal after each phase.
            Tick t0 = env.scheduler()->time(0);
            EXPECT_EQ(env.scheduler()->time(c.id()), t0);
            bar.arrive(c);
        }
    });
    EXPECT_EQ(env.stats(2).barriers, 20u);
}

TEST(Lock, NativeMutualExclusion)
{
    Env env({Mode::Native, 8});
    Lock lock(env);
    long counter = 0;
    env.run([&](ProcCtx& c) {
        for (int i = 0; i < 1000; ++i) {
            Lock::Guard g(lock, c);
            ++counter;
        }
    });
    EXPECT_EQ(counter, 8000);
}

TEST(Lock, SimMutualExclusionAndCounts)
{
    Env env(simCfg(8));
    Lock lock(env);
    long counter = 0;
    env.run([&](ProcCtx& c) {
        for (int i = 0; i < 100; ++i) {
            Lock::Guard g(lock, c);
            ++counter;
            c.work(3);
        }
    });
    EXPECT_EQ(counter, 800);
    std::uint64_t locks = 0;
    for (int p = 0; p < 8; ++p)
        locks += env.stats(p).locks;
    EXPECT_EQ(locks, 800u);
}

TEST(Lock, SimSerializesCriticalSectionsInLogicalTime)
{
    // Each processor holds the lock for 100 ticks; with 4 processors
    // the last release time must be >= 400 and waits must accumulate.
    Env env(simCfg(4));
    Lock lock(env);
    env.run([&](ProcCtx& c) {
        lock.acquire(c);
        c.work(100);
        lock.release(c);
    });
    Tick max_t = 0;
    Tick total_wait = 0;
    for (int p = 0; p < 4; ++p) {
        max_t = std::max(max_t, env.stats(p).finishTime);
        total_wait += env.stats(p).lockWait;
    }
    EXPECT_GE(max_t, 400u);
    // Serialization cost: 100 + 200 + 300 = 600 ticks of waiting.
    EXPECT_EQ(total_wait, 600u);
}

TEST(Lock, SimFreeLockCarriesReleaseTime)
{
    // P0 releases at t=100; P1 acquires later (t=10 at request) and
    // must be advanced to 100.
    Env env(simCfg(2));
    Lock lock(env);
    Barrier bar(env);
    env.run([&](ProcCtx& c) {
        if (c.id() == 0) {
            lock.acquire(c);
            c.work(100);
            lock.release(c);
            bar.arrive(c);
        } else {
            bar.arrive(c);  // wait until P0 is done
            Tick before = env.scheduler()->time(1);
            lock.acquire(c);
            EXPECT_GE(env.scheduler()->time(1), 100u);
            EXPECT_GE(env.stats(1).lockWait, 100u - before);
            lock.release(c);
        }
    });
}

TEST(Flag, NativeSetReleasesWaiters)
{
    Env env({Mode::Native, 4});
    Flag flag(env);
    int value = 0;
    env.run([&](ProcCtx& c) {
        if (c.id() == 0) {
            value = 42;
            flag.set(c);
        } else {
            flag.wait(c);
            EXPECT_EQ(value, 42);
        }
    });
}

TEST(Flag, SimWaitersAdoptSetterClock)
{
    Env env(simCfg(3));
    Flag flag(env);
    env.run([&](ProcCtx& c) {
        if (c.id() == 0) {
            c.work(500);
            flag.set(c);
        } else {
            c.work(10);
            flag.wait(c);
            EXPECT_GE(env.scheduler()->time(c.id()), 500u);
        }
    });
    EXPECT_EQ(env.stats(1).pauses, 1u);
    EXPECT_GE(env.stats(1).pauseWait, 490u);
    EXPECT_EQ(env.stats(0).pauses, 0u);
}

TEST(Flag, SimLateWaiterDoesNotBlock)
{
    Env env(simCfg(2));
    Flag flag(env);
    Barrier bar(env);
    env.run([&](ProcCtx& c) {
        if (c.id() == 0) {
            flag.set(c);
            bar.arrive(c);
        } else {
            bar.arrive(c);
            flag.wait(c);  // already set: returns immediately
        }
    });
    EXPECT_EQ(env.stats(1).pauses, 1u);
}

TEST(Env, ElapsedReflectsCriticalPath)
{
    Env env(simCfg(4));
    env.run([&](ProcCtx& c) { c.work(10 * (c.id() + 1)); });
    EXPECT_EQ(env.elapsed(), 40u);
}

TEST(Env, StartMeasurementZeroesWindow)
{
    Env env(simCfg(2));
    Barrier bar(env);
    env.run([&](ProcCtx& c) { c.work(1000); });
    env.startMeasurement();
    env.run([&](ProcCtx& c) {
        c.work(5);
        bar.arrive(c);
    });
    EXPECT_EQ(env.elapsed(), 5u);
    EXPECT_EQ(env.stats(0).work, 5u);
}

TEST(Env, PerfectSpeedupOnEmbarrassinglyParallelWork)
{
    // The PRAM model must report linear speedup for independent work.
    auto elapsed = [](int nprocs) {
        Env env(simCfg(nprocs));
        env.run([&](ProcCtx& c) { c.work(12000 / nprocs); });
        return env.elapsed();
    };
    Tick t1 = elapsed(1);
    EXPECT_EQ(t1 / elapsed(2), 2u);
    EXPECT_EQ(t1 / elapsed(4), 4u);
    EXPECT_EQ(t1 / elapsed(8), 8u);
}
