// Build-system smoke test: the runtime and simulator link and run a
// trivial team in both modes.
#include <gtest/gtest.h>

#include "rt/env.h"
#include "rt/shared.h"
#include "rt/sync.h"
#include "sim/memsys.h"

using namespace splash;

TEST(Smoke, NativeTeamRuns)
{
    rt::Env env({rt::Mode::Native, 4});
    rt::SharedArray<int> a(env, 4);
    rt::Barrier bar(env);
    env.run([&](rt::ProcCtx& c) {
        a[c.id()] = c.id() + 1;
        bar.arrive(c);
    });
    int sum = 0;
    for (int i = 0; i < 4; ++i)
        sum += a.raw()[i];
    EXPECT_EQ(sum, 10);
}

TEST(Smoke, SimTeamRunsWithMemSystem)
{
    rt::Env env({rt::Mode::Sim, 4});
    sim::MachineConfig mc;
    mc.nprocs = 4;
    sim::MemSystem mem(mc, &env.heap());
    env.attachMemSystem(&mem);

    rt::SharedArray<double> a(env, 1024);
    rt::Barrier bar(env);
    env.run([&](rt::ProcCtx& c) {
        for (int i = c.id(); i < 1024; i += 4)
            a[i] = i * 2.0;
        bar.arrive(c);
        double s = 0;
        for (int i = 0; i < 1024; ++i)
            s += a[i];
        c.flops(1024);
        EXPECT_DOUBLE_EQ(s, 1023.0 * 1024.0);
    });
    EXPECT_GT(mem.total().accesses(), 0u);
    EXPECT_TRUE(mem.checkCoherenceInvariants());
    EXPECT_GT(env.elapsed(), 0u);
}
