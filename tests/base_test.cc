// Tests for base utilities and configuration error handling.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/types.h"
#include "sim/config.h"
#include "sim/memsys.h"
#include "sim/sweep.h"

using namespace splash;

TEST(Rng, DeterministicAndWellDistributed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
    Rng c(42);
    double sum = 0;
    int buckets[10] = {};
    for (int i = 0; i < 100000; ++i) {
        double u = c.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
        ++buckets[int(u * 10)];
    }
    EXPECT_NEAR(sum / 100000, 0.5, 0.01);
    for (int k = 0; k < 10; ++k)
        EXPECT_NEAR(buckets[k], 10000, 500);
}

TEST(Rng, NormalHasUnitVariance)
{
    Rng r(7);
    double sum = 0, sq = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double v = r.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Types, BitHelpers)
{
    EXPECT_EQ(log2i(1), 0);
    EXPECT_EQ(log2i(64), 6);
    EXPECT_EQ(log2i(1u << 20), 20);
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(4096));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(48));
    EXPECT_EQ(alignDown(127, 64), 64u);
    EXPECT_EQ(alignDown(128, 64), 128u);
}

TEST(CacheConfigErrors, RejectsBadGeometry)
{
    sim::CacheConfig c;
    c.size = 1000;  // not a power of two
    EXPECT_DEATH(c.validate(), "power");
    c = sim::CacheConfig{};
    c.assoc = 3;  // does not divide line count
    EXPECT_DEATH(c.validate(), "associativity");
    c = sim::CacheConfig{};
    c.lineSize = 4;  // < one word
    EXPECT_DEATH(c.validate(), "line size");
}

TEST(MachineConfigErrors, RejectsBadProcessorCount)
{
    sim::MachineConfig mc;
    mc.nprocs = 0;
    EXPECT_DEATH(mc.validate(), "processor count");
    mc.nprocs = 65;
    EXPECT_DEATH(mc.validate(), "processor count");
}

TEST(MemSystemErrors, RejectsInvalidProcessorId)
{
    sim::MachineConfig mc;
    mc.nprocs = 2;
    sim::MemSystem m(mc);
    EXPECT_DEATH(m.access(5, 0x1000, 8, AccessType::Read),
                 "processor id");
}

TEST(SweepErrors, RejectsUnknownOperatingPoint)
{
    sim::SweepConfig sc;
    sc.nprocs = 1;
    sim::CacheSweep sw(sc);
    sw.access(0, 0x1000, 8, AccessType::Read);
    EXPECT_DEATH((void)sw.misses(3000, 1), "operating point");
    EXPECT_DEATH((void)sw.misses(1024, 8), "operating point");
}
