# Gnuplot recipes for the paper's figure shapes from the CSV outputs.
#
#   ./build/bench/fig1_speedups --csv > results/fig1.csv
#   ./build/bench/fig3_working_sets --csv > results/fig3.csv
#   gnuplot -e "fig=1" results/plot_figures.gp   # -> fig1.png
#   gnuplot -e "fig=3" results/plot_figures.gp   # -> fig3_<app>.png
#
# (The benches print a header row; gnuplot's `skip 1` below handles it.)

set datafile separator ','
set term pngcairo size 900,600
set key left top

if (!exists("fig")) fig = 1

if (fig == 1) {
    set output 'fig1.png'
    set title 'Figure 1: PRAM speedups'
    set xlabel 'processors'
    set ylabel 'speedup'
    set logscale x 2
    set xrange [1:64]
    plot for [app in "Barnes Cholesky FFT FMM LU Ocean Radiosity Radix Raytrace Volrend Water-Nsq Water-Sp"] \
        'fig1.csv' skip 1 using 2:(strcol(1) eq app ? $3 : NaN) \
        with linespoints title app, \
        x with lines dt 2 lc 'gray' title 'ideal'
}

if (fig == 3) {
    set xlabel 'cache size (KB)'
    set ylabel 'miss rate (%)'
    set logscale x 2
    do for [app in "Barnes Cholesky FFT FMM LU Ocean Radiosity Radix Raytrace Volrend Water-Nsq Water-Sp"] {
        set output sprintf('fig3_%s.png', app)
        set title sprintf('Figure 3: %s miss rate vs cache size', app)
        plot for [a in "1 2 4 0"] \
            'fig3.csv' skip 1 \
            using ($2/1024):(strcol(1) eq app && strcol(3) eq a ? 100*$4 : NaN) \
            with linespoints title (a eq "0" ? "full" : a."-way")
    }
}
