# Gnuplot recipes for the paper's figure shapes from the CSV outputs.
#
#   ./build/bench/fig1_speedups --csv > results/fig1.csv
#   ./build/bench/fig3_working_sets --csv > results/fig3.csv
#   ./build/bench/fig4_traffic --csv > results/fig4.csv
#   ./build/bench/fig5_ocean_scaling --csv > results/fig5.csv
#   ./build/bench/fig6_small_cache --csv > results/fig6.csv
#   ./build/bench/fig7_miss_classification --csv > results/fig7.csv
#   gnuplot -e "fig=1" results/plot_figures.gp   # -> fig1.png
#   gnuplot -e "fig=3" results/plot_figures.gp   # -> fig3_<app>.png
#   gnuplot -e "fig=4" results/plot_figures.gp   # -> fig4_<app>.png
#   gnuplot -e "fig=5" results/plot_figures.gp   # -> fig5.png
#   gnuplot -e "fig=6" results/plot_figures.gp   # -> fig6_<app>.png
#   gnuplot -e "fig=7" results/plot_figures.gp   # -> fig7_<app>.png
#
# (The benches print a header row; gnuplot's `skip 1` below handles it.)

set datafile separator ','
set term pngcairo size 900,600
set key left top

if (!exists("fig")) fig = 1

if (fig == 1) {
    set output 'fig1.png'
    set title 'Figure 1: PRAM speedups'
    set xlabel 'processors'
    set ylabel 'speedup'
    set logscale x 2
    set xrange [1:64]
    plot for [app in "Barnes Cholesky FFT FMM LU Ocean Radiosity Radix Raytrace Volrend Water-Nsq Water-Sp"] \
        'fig1.csv' skip 1 using 2:(strcol(1) eq app ? $3 : NaN) \
        with linespoints title app, \
        x with lines dt 2 lc 'gray' title 'ideal'
}

if (fig == 3) {
    set xlabel 'cache size (KB)'
    set ylabel 'miss rate (%)'
    set logscale x 2
    do for [app in "Barnes Cholesky FFT FMM LU Ocean Radiosity Radix Raytrace Volrend Water-Nsq Water-Sp"] {
        set output sprintf('fig3_%s.png', app)
        set title sprintf('Figure 3: %s miss rate vs cache size', app)
        plot for [a in "1 2 4 0"] \
            'fig3.csv' skip 1 \
            using ($2/1024):(strcol(1) eq app && strcol(3) eq a ? 100*$4 : NaN) \
            with linespoints title (a eq "0" ? "full" : a."-way")
    }
}

# Stacked traffic components (Figures 4-6): rem_shared, rem_cold,
# rem_cap, rem_wb, rem_ovhd, local, per FLOP or instruction.
if (fig == 4) {
    set style data histograms
    set style histogram rowstacked
    set style fill solid 0.8 border -1
    set boxwidth 0.75
    set ylabel 'bytes per FLOP (or instr)'
    set xlabel 'processors'
    do for [app in "Barnes Cholesky FFT FMM LU Ocean Radiosity Radix Raytrace Volrend Water-Nsq Water-Sp"] {
        set output sprintf('fig4_%s.png', app)
        set title sprintf('Figure 4: %s traffic breakdown (1 MB caches)', app)
        plot 'fig4.csv' skip 1 \
                using (strcol(1) eq app ? $3 : NaN):xtic(2) title 'remote shared', \
            '' skip 1 using (strcol(1) eq app ? $4 : NaN) title 'remote cold', \
            '' skip 1 using (strcol(1) eq app ? $5 : NaN) title 'remote capacity', \
            '' skip 1 using (strcol(1) eq app ? $6 : NaN) title 'remote writeback', \
            '' skip 1 using (strcol(1) eq app ? $7 : NaN) title 'remote overhead', \
            '' skip 1 using (strcol(1) eq app ? $8 : NaN) title 'local'
    }
}

if (fig == 5) {
    set style data histograms
    set style histogram rowstacked
    set style fill solid 0.8 border -1
    set boxwidth 0.75
    set output 'fig5.png'
    set title 'Figure 5: Ocean traffic vs problem size (32 procs, 1 MB)'
    set ylabel 'bytes per FLOP'
    set xlabel 'grid'
    plot 'fig5.csv' skip 1 using 3:xtic(1) title 'remote shared', \
        '' skip 1 using 4 title 'remote cold', \
        '' skip 1 using 5 title 'remote capacity', \
        '' skip 1 using 6 title 'remote writeback', \
        '' skip 1 using 7 title 'remote overhead', \
        '' skip 1 using 8 title 'local'
}

if (fig == 6) {
    set style data histograms
    set style histogram rowstacked
    set style fill solid 0.8 border -1
    set boxwidth 0.75
    set ylabel 'bytes per FLOP (or instr)'
    set xlabel 'processors'
    do for [app in "FFT Ocean Radix Raytrace"] {
        set output sprintf('fig6_%s.png', app)
        set title sprintf('Figure 6: %s traffic with 8 KB caches', app)
        plot 'fig6.csv' skip 1 \
                using (strcol(1) eq app && strcol(3) eq "8" ? $4 : NaN):xtic(2) \
                title 'remote shared', \
            '' skip 1 using (strcol(1) eq app && strcol(3) eq "8" ? $5 : NaN) title 'remote cold', \
            '' skip 1 using (strcol(1) eq app && strcol(3) eq "8" ? $6 : NaN) title 'remote capacity', \
            '' skip 1 using (strcol(1) eq app && strcol(3) eq "8" ? $7 : NaN) title 'remote writeback', \
            '' skip 1 using (strcol(1) eq app && strcol(3) eq "8" ? $8 : NaN) title 'remote overhead', \
            '' skip 1 using (strcol(1) eq app && strcol(3) eq "8" ? $9 : NaN) title 'local'
    }
}

# Miss decomposition vs line size (misses per 1000 references).
if (fig == 7) {
    set style data histograms
    set style histogram rowstacked
    set style fill solid 0.8 border -1
    set boxwidth 0.75
    set ylabel 'misses per 1000 references'
    set xlabel 'line size (bytes)'
    do for [app in "Barnes Cholesky FFT FMM LU Ocean Radiosity Radix Raytrace Volrend Water-Nsq Water-Sp"] {
        set output sprintf('fig7_%s.png', app)
        set title sprintf('Figure 7: %s miss decomposition vs line size', app)
        plot 'fig7.csv' skip 1 \
                using (strcol(1) eq app ? $3 : NaN):xtic(2) title 'cold', \
            '' skip 1 using (strcol(1) eq app ? $4 : NaN) title 'capacity', \
            '' skip 1 using (strcol(1) eq app ? $5 : NaN) title 'true sharing', \
            '' skip 1 using (strcol(1) eq app ? $6 : NaN) title 'false sharing'
    }
}
